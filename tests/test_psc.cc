/**
 * @file
 * Unit tests for the paging-structure caches.
 */

#include <gtest/gtest.h>

#include "mmu/paging_structure_cache.hh"

using namespace atscale;

namespace
{
constexpr PhysAddr cr3 = 0x1000;
} // namespace

TEST(Psc, ColdProbeStartsAtRoot)
{
    PagingStructureCaches pscs;
    PscProbeResult r = pscs.probe(0x12345678000ull, cr3);
    EXPECT_EQ(r.startLevel, 3);
    EXPECT_EQ(r.node, cr3);
    EXPECT_EQ(pscs.misses(), 1u);
}

TEST(Psc, DeepestHitWins)
{
    PagingStructureCaches pscs;
    Addr va = 0x7f8000200000ull;
    pscs.fill(va, 3, 0xaaaa000); // PML4E -> PDPT node
    pscs.fill(va, 2, 0xbbbb000); // PDPTE -> PD node
    pscs.fill(va, 1, 0xcccc000); // PDE   -> PT node

    PscProbeResult r = pscs.probe(va, cr3);
    EXPECT_EQ(r.startLevel, 0); // PDE cache hit: only the leaf remains
    EXPECT_EQ(r.node, 0xcccc000u);
    EXPECT_EQ(pscs.levelHits(1), 1u);
}

TEST(Psc, PrefixSharingMatchesRegionSizes)
{
    PagingStructureCaches pscs;
    Addr va = 0x7f8000200000ull;
    pscs.fill(va, 1, 0xcccc000);

    // Same 2 MiB region: hits the PDE cache.
    EXPECT_EQ(pscs.probe(va + 0x1fffff, cr3).startLevel, 0);
    // Next 2 MiB region: PDE tag differs, full walk.
    EXPECT_EQ(pscs.probe(va + pageSize2M, cr3).startLevel, 3);

    pscs.fill(va, 2, 0xbbbb000);
    // Next 2 MiB region now hits the PDPTE cache (same 1 GiB region).
    PscProbeResult r = pscs.probe(va + pageSize2M, cr3);
    EXPECT_EQ(r.startLevel, 1);
    EXPECT_EQ(r.node, 0xbbbb000u);
}

TEST(Psc, LruWithinArray)
{
    PscParams params;
    params.pdeEntries = 2;
    PagingStructureCaches pscs(params);
    pscs.fill(0x0ull, 1, 0x1000);
    pscs.fill(1ull << 21, 1, 0x2000);
    // Touch the first, then insert a third: the second is the victim.
    pscs.probe(0x0ull, cr3);
    pscs.fill(2ull << 21, 1, 0x3000);
    EXPECT_EQ(pscs.probe(0x0ull, cr3).startLevel, 0);
    EXPECT_EQ(pscs.probe(1ull << 21, cr3).startLevel, 3);
    EXPECT_EQ(pscs.probe(2ull << 21, cr3).startLevel, 0);
}

TEST(Psc, FillUpdatesExistingEntry)
{
    PagingStructureCaches pscs;
    pscs.fill(0x0ull, 1, 0x1000);
    pscs.fill(0x0ull, 1, 0x9000); // remap
    EXPECT_EQ(pscs.probe(0x0ull, cr3).node, 0x9000u);
}

TEST(Psc, DisabledCachesNeverHit)
{
    PscParams params;
    params.enabled = false;
    PagingStructureCaches pscs(params);
    pscs.fill(0x0ull, 1, 0x1000);
    PscProbeResult r = pscs.probe(0x0ull, cr3);
    EXPECT_EQ(r.startLevel, 3);
    EXPECT_EQ(pscs.hits(), 0u);
    EXPECT_EQ(pscs.misses(), 0u);
}

TEST(Psc, FlushAndStats)
{
    PagingStructureCaches pscs;
    pscs.fill(0x0ull, 2, 0x1000);
    pscs.probe(0x0ull, cr3);
    EXPECT_EQ(pscs.hits(), 1u);
    pscs.flush();
    EXPECT_EQ(pscs.hits(), 0u);
    EXPECT_EQ(pscs.probe(0x0ull, cr3).startLevel, 3);
}

TEST(PscDeathTest, BadLevels)
{
    PagingStructureCaches pscs;
    EXPECT_DEATH(pscs.fill(0, 0, 0x1000), "bad level");
    EXPECT_DEATH(pscs.fill(0, 4, 0x1000), "bad level");
    EXPECT_DEATH(pscs.levelHits(0), "out of range");
}

TEST(PscInvalidate, UnmappedPageIsANoOp)
{
    // INVLPG for an address no cached structure covers must change
    // nothing — not even replacement state (bitwise, via stateHash).
    PagingStructureCaches pscs;
    Addr va = 0x7f8000200000ull;
    pscs.fill(va, 3, 0xaaaa000);
    pscs.fill(va, 2, 0xbbbb000);
    pscs.fill(va, 1, 0xcccc000);
    std::uint64_t before = pscs.stateHash();

    // A different PML4 region: every tag differs at every level.
    pscs.invalidatePage(0x123400000000ull, PageSize::Size4K);
    EXPECT_EQ(pscs.stateHash(), before);
    EXPECT_EQ(pscs.probe(va, cr3).startLevel, 0);
}

TEST(PscInvalidate, FourKPageDropsOnlyTheCoveringEntries)
{
    PagingStructureCaches pscs;
    Addr va = 0x7f8000200000ull;
    pscs.fill(va, 1, 0xcccc000);
    pscs.fill(va + pageSize2M, 1, 0xdddd000); // sibling 2 MiB region
    pscs.fill(va, 2, 0xbbbb000);              // shared PDPTE

    pscs.invalidatePage(va, PageSize::Size4K);
    // The PDE and PDPTE covering va are gone: full walk.
    EXPECT_EQ(pscs.probe(va, cr3).startLevel, 3);
    // The sibling's PDE tag differs and must survive the INVLPG.
    EXPECT_EQ(pscs.probe(va + pageSize2M, cr3).startLevel, 0);
}

TEST(PscInvalidate, HugepageSpansEveryCoveredPde)
{
    // Invalidating a 2 MiB mapping must drop the PDE entry for that
    // region (its reach is exactly the page) while PDEs of neighbouring
    // regions keep their fills — the hugepage-backed VPN edge case: a
    // single INVLPG covers 512 leaf VPNs' worth of PDE reach.
    PagingStructureCaches pscs;
    Addr huge = 0x7f8000200000ull & ~(pageSize2M - 1);
    pscs.fill(huge, 1, 0x1111000);
    pscs.fill(huge + pageSize2M, 1, 0x2222000);

    pscs.invalidatePage(huge, PageSize::Size2M);
    EXPECT_EQ(pscs.probe(huge, cr3).startLevel, 3);
    EXPECT_EQ(pscs.probe(huge + 0x1000, cr3).startLevel, 3);

    // The neighbour was outside the invalidated reach. Its PDPTE-level
    // prefix is shared, so refill it before probing deeper levels.
    EXPECT_EQ(pscs.probe(huge + pageSize2M, cr3).startLevel, 0);

    // A 1 GiB invalidation sweeps every PDE in the region, neighbours
    // included, plus the PDPTE entry itself.
    pscs.fill(huge, 2, 0xbbbb000);
    pscs.invalidatePage(huge & ~(pageSize1G - 1), PageSize::Size1G);
    EXPECT_EQ(pscs.probe(huge + pageSize2M, cr3).startLevel, 3);
}

TEST(PscInvalidate, DoubleInvalidationIsIdempotent)
{
    // Shootdown storms deliver the same INVLPG to a core more than once
    // (initiator + forwarded IPI). The second pass must be a byte-level
    // no-op, so replaying the storm cannot perturb determinism.
    Addr va = 0x7f8000200000ull;

    PagingStructureCaches once;
    once.fill(va, 1, 0xcccc000);
    once.fill(va, 2, 0xbbbb000);
    once.invalidatePage(va, PageSize::Size4K);

    PagingStructureCaches twice;
    twice.fill(va, 1, 0xcccc000);
    twice.fill(va, 2, 0xbbbb000);
    twice.invalidatePage(va, PageSize::Size4K);
    twice.invalidatePage(va, PageSize::Size4K);

    EXPECT_EQ(once.stateHash(), twice.stateHash());
    EXPECT_EQ(twice.probe(va, cr3).startLevel, 3);

    // Invalidate-refill-invalidate under the storm: the refill lands in
    // the invalidated slot and the second INVLPG drops it again.
    twice.fill(va, 1, 0x9999000);
    EXPECT_EQ(twice.probe(va, cr3).startLevel, 0);
    twice.invalidatePage(va, PageSize::Size4K);
    EXPECT_EQ(twice.probe(va, cr3).startLevel, 3);
}
