/**
 * @file
 * Unit tests for util/random.hh.
 */

#include <gtest/gtest.h>

#include "util/random.hh"

using namespace atscale;

TEST(Random, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Random, BelowStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Random, BelowIsRoughlyUniform)
{
    Rng rng(11);
    const int buckets = 16;
    const int draws = 160000;
    int counts[buckets] = {};
    for (int i = 0; i < draws; ++i)
        ++counts[rng.below(buckets)];
    for (int b = 0; b < buckets; ++b) {
        EXPECT_GT(counts[b], draws / buckets * 0.9);
        EXPECT_LT(counts[b], draws / buckets * 1.1);
    }
}

TEST(Random, RealInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 100000; ++i) {
        double r = rng.real();
        ASSERT_GE(r, 0.0);
        ASSERT_LT(r, 1.0);
        sum += r;
    }
    EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Random, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Random, ZipfInRangeAndSkewed)
{
    Rng rng(13);
    const std::uint64_t n = 1000;
    std::uint64_t low = 0, total = 20000;
    for (std::uint64_t i = 0; i < total; ++i) {
        std::uint64_t z = rng.zipf(n, 0.9);
        ASSERT_LT(z, n);
        low += (z < n / 10);
    }
    // A Zipf draw concentrates well over 10% of its mass on the first
    // decile of ranks.
    EXPECT_GT(low, total / 5);
}

TEST(Random, Mix64AvalanchesSingleBitFlips)
{
    // Flipping one input bit should flip roughly half the output bits.
    for (int b = 0; b < 64; b += 7) {
        std::uint64_t x = 0x0123456789abcdefull;
        int diff = __builtin_popcountll(mix64(x) ^ mix64(x ^ (1ull << b)));
        EXPECT_GT(diff, 16);
        EXPECT_LT(diff, 48);
    }
}
