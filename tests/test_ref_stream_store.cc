/**
 * @file
 * Differential and durability suite for the reference-stream
 * record/replay store (core/ref_stream_store.hh).
 *
 * The store's contract is that it is invisible: a run that records its
 * stream, a run that replays the recording, and a run with the store
 * disabled must produce bit-identical counters and exported JSON. On
 * top of that, damaged files must behave like the run cache's — a torn
 * or corrupted recording is a miss (the run regenerates and re-records),
 * never a wrong answer.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/ref_stream_store.hh"
#include "core/run_export.hh"

using namespace atscale;

namespace
{

/** Scoped private stream directory (empty name disables the store). */
class ScopedStreamDir
{
  public:
    explicit ScopedStreamDir(const std::string &name)
    {
        // The run cache would satisfy repeat specs without simulating,
        // leaving the replay path untested — keep it out of the way.
        unsetenv("ATSCALE_CACHE_DIR");
        if (!name.empty()) {
            path_ = ::testing::TempDir() + "/" + name;
            std::filesystem::remove_all(path_);
            std::filesystem::create_directories(path_);
            setenv("ATSCALE_STREAM_DIR", path_.c_str(), 1);
        } else {
            unsetenv("ATSCALE_STREAM_DIR");
        }
    }

    ~ScopedStreamDir()
    {
        unsetenv("ATSCALE_STREAM_DIR");
        if (!path_.empty())
            std::filesystem::remove_all(path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

RunSpec
storeSpec()
{
    RunSpec spec;
    spec.workload = "memcached-uniform";
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = 5;
    return spec;
}

std::string
resultBytes(const RunResult &result)
{
    std::ostringstream os;
    writeRunResultJson(os, result);
    return os.str();
}

void
expectSameRun(const RunResult &a, const RunResult &b, const char *what)
{
    a.counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, b.counters.get(id)) << what << ": " << name;
    });
    EXPECT_EQ(a.footprintTouched, b.footprintTouched) << what;
    EXPECT_EQ(a.pageTableBytes, b.pageTableBytes) << what;
    EXPECT_EQ(resultBytes(a), resultBytes(b)) << what;
}

/** Minimal sources for the wrap-gate unit tests. */
struct PlainSource : RefSource
{
    bool
    next(Ref &ref) override
    {
        ref = Ref{};
        return true;
    }

    Addr wrongPathAddr(Rng &) override { return 0; }
};

struct AnchoredSource : PlainSource
{
    bool supportsAnchors() const override { return true; }
    std::uint64_t wrongPathAnchor() const override { return 42; }
};

} // namespace

TEST(RefStreamStore, DisabledStoreHasNoPathAndWrapsNothing)
{
    ScopedStreamDir off("");
    EXPECT_EQ(refStreamDir(), "");
    EXPECT_EQ(refStreamPath(storeSpec()), "");

    auto source = std::make_unique<AnchoredSource>();
    RefSource *raw = source.get();
    auto wrapped = wrapWithStreamStore(std::move(source), storeSpec(), false, {});
    EXPECT_EQ(wrapped.get(), raw);
}

TEST(RefStreamStore, GatesLeaveIneligibleStreamsUntouched)
{
    ScopedStreamDir dir("refstore_gates");

    // No anchor support: the generator cannot be replayed exactly.
    {
        auto source = std::make_unique<PlainSource>();
        RefSource *raw = source.get();
        auto wrapped =
            wrapWithStreamStore(std::move(source), storeSpec(), false, {});
        EXPECT_EQ(wrapped.get(), raw);
    }

    // Multi-core specs consume per-tenant streams, not this one.
    {
        RunSpec spec = storeSpec();
        spec.cores = 2;
        auto source = std::make_unique<AnchoredSource>();
        RefSource *raw = source.get();
        auto wrapped = wrapWithStreamStore(std::move(source), spec, false, {});
        EXPECT_EQ(wrapped.get(), raw);
    }

    // Eligible stream: the store interposes a recording tee.
    {
        auto source = std::make_unique<AnchoredSource>();
        RefSource *raw = source.get();
        auto wrapped =
            wrapWithStreamStore(std::move(source), storeSpec(), false, {});
        EXPECT_NE(wrapped.get(), raw);
        // The tee is transparent: anchor calls reach the generator.
        EXPECT_TRUE(wrapped->supportsAnchors());
        EXPECT_EQ(wrapped->wrongPathAnchor(), 42u);
    }
}

TEST(RefStreamStore, RecordedReplayedAndPlainRunsAreBitIdentical)
{
    const RunSpec spec = storeSpec();

    RunResult plain;
    {
        ScopedStreamDir off("");
        plain = runExperiment(spec);
    }

    ScopedStreamDir dir("refstore_roundtrip");
    const std::string path = refStreamPath(spec);
    ASSERT_NE(path, "");
    ASSERT_FALSE(std::filesystem::exists(path));

    // First run records.
    RunResult recorded = runExperiment(spec);
    ASSERT_TRUE(std::filesystem::exists(path))
        << "recording tee never wrote the stream file";
    const auto file_size = std::filesystem::file_size(path);
    EXPECT_GT(file_size, 0u);
    expectSameRun(plain, recorded, "recorded vs plain");

    // Second run replays — the file must not be rewritten.
    const auto mtime = std::filesystem::last_write_time(path);
    RunResult replayed = runExperiment(spec);
    expectSameRun(plain, replayed, "replayed vs plain");
    EXPECT_EQ(std::filesystem::last_write_time(path), mtime)
        << "replay run re-recorded an intact file";

    // A different seed is a different identity: its replay file is
    // separate and its results differ (the store must never alias).
    RunSpec other = spec;
    other.seed = 6;
    ASSERT_NE(refStreamPath(other), path);
    RunResult other_result = runExperiment(other);
    EXPECT_TRUE(std::filesystem::exists(refStreamPath(other)));
    EXPECT_NE(resultBytes(plain), resultBytes(other_result));
}

TEST(RefStreamStore, ReplayRebasesAcrossPageSizes)
{
    // The stream identity excludes the page size (one file serves every
    // page-size lane of a sweep point), but region bases depend on it:
    // mapRegion aligns each region to its effective page, so the second
    // and later regions of a multi-region workload land at different
    // addresses under 2M backing than under 4K. A recording made at 4K
    // must replay into the 2M run's layout — bit-identically to a fresh
    // 2M run — rather than serving 4K-absolute addresses (which hit
    // unmapped space and aborted the run before rebasing existed).
    RunSpec spec4k = storeSpec();
    spec4k.pageSize = PageSize::Size4K;
    RunSpec spec2m = spec4k;
    spec2m.pageSize = PageSize::Size2M;
    ASSERT_EQ(spec4k.laneGroupKey(), spec2m.laneGroupKey());

    RunResult plain2m;
    {
        ScopedStreamDir off("");
        plain2m = runExperiment(spec2m);
    }

    ScopedStreamDir dir("refstore_rebase");
    const std::string path = refStreamPath(spec4k);

    // Record under 4K backing.
    runExperiment(spec4k);
    ASSERT_TRUE(std::filesystem::exists(path));
    const auto mtime = std::filesystem::last_write_time(path);

    // Replay the same file under 2M backing.
    RunResult replayed2m = runExperiment(spec2m);
    expectSameRun(plain2m, replayed2m, "2M replay of a 4K recording");
    EXPECT_EQ(std::filesystem::last_write_time(path), mtime)
        << "cross-page-size run re-recorded instead of replaying";
}

TEST(RefStreamStore, TornFileIsAMissAndRerecords)
{
    const RunSpec spec = storeSpec();
    ScopedStreamDir dir("refstore_torn");
    const std::string path = refStreamPath(spec);

    RunResult fresh = runExperiment(spec);
    ASSERT_TRUE(std::filesystem::exists(path));
    const auto full_size = std::filesystem::file_size(path);

    // Truncate to half: the checksum cannot verify, so the file is a
    // miss, the run regenerates from the live generator, and the tee
    // re-records the identity.
    std::filesystem::resize_file(path, full_size / 2);
    RunResult after_torn = runExperiment(spec);
    expectSameRun(fresh, after_torn, "after truncation");
    EXPECT_EQ(std::filesystem::file_size(path), full_size)
        << "torn file was not re-recorded";
}

TEST(RefStreamStore, CorruptPayloadIsAMiss)
{
    const RunSpec spec = storeSpec();
    ScopedStreamDir dir("refstore_corrupt");
    const std::string path = refStreamPath(spec);

    RunResult fresh = runExperiment(spec);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Flip one payload byte mid-file; the trailing checksum must reject
    // the load and the run must fall back to the live generator.
    {
        std::fstream file(path,
                          std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(file.is_open());
        const auto offset = static_cast<std::streamoff>(
            std::filesystem::file_size(path) / 2);
        file.seekg(offset);
        char byte = 0;
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5a);
        file.seekp(offset);
        file.write(&byte, 1);
    }
    RunResult after_corrupt = runExperiment(spec);
    expectSameRun(fresh, after_corrupt, "after corruption");
}

TEST(RefStreamStore, WrongIdentityInTheFileIsAMiss)
{
    // Two specs whose files are forcibly swapped must not replay each
    // other's streams: the identity string embedded in the file guards
    // against external renames.
    const RunSpec spec_a = storeSpec();
    RunSpec spec_b = storeSpec();
    spec_b.seed = 9;

    ScopedStreamDir dir("refstore_identity");
    RunResult fresh_a = runExperiment(spec_a);
    RunResult fresh_b = runExperiment(spec_b);
    const std::string path_a = refStreamPath(spec_a);
    const std::string path_b = refStreamPath(spec_b);
    ASSERT_TRUE(std::filesystem::exists(path_a));
    ASSERT_TRUE(std::filesystem::exists(path_b));

    std::filesystem::path tmp = dir.path() + "/swap.tmp";
    std::filesystem::rename(path_a, tmp);
    std::filesystem::rename(path_b, path_a);
    std::filesystem::rename(tmp, path_b);

    RunResult again_a = runExperiment(spec_a);
    RunResult again_b = runExperiment(spec_b);
    expectSameRun(fresh_a, again_a, "identity-mismatched file (a)");
    expectSameRun(fresh_b, again_b, "identity-mismatched file (b)");
}
