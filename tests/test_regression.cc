/**
 * @file
 * Unit tests for the OLS regression used in Table IV.
 */

#include <gtest/gtest.h>

#include "core/regression.hh"
#include "util/random.hh"

using namespace atscale;

TEST(Regression, RecoversExactLine)
{
    std::vector<double> x, y;
    for (int i = 0; i < 10; ++i) {
        x.push_back(i);
        y.push_back(3.5 - 0.25 * i);
    }
    OlsFit fit = fitOls(x, y);
    EXPECT_NEAR(fit.intercept, 3.5, 1e-12);
    EXPECT_NEAR(fit.slope, -0.25, 1e-12);
    EXPECT_NEAR(fit.r2, 1.0, 1e-12);
    EXPECT_NEAR(fit.adjustedR2, 1.0, 1e-12);
    EXPECT_NEAR(fit.predict(20.0), -1.5, 1e-12);
}

TEST(Regression, NoisyLineRecoversSlopeApproximately)
{
    Rng rng(3);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        double xv = i / 10.0;
        x.push_back(xv);
        y.push_back(0.13 * xv - 0.8 + (rng.real() - 0.5) * 0.05);
    }
    OlsFit fit = fitOls(x, y);
    EXPECT_NEAR(fit.slope, 0.13, 0.01);
    EXPECT_NEAR(fit.intercept, -0.8, 0.05);
    EXPECT_GT(fit.adjustedR2, 0.95);
}

TEST(Regression, PureNoiseHasLowR2)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 200; ++i) {
        x.push_back(i);
        y.push_back(rng.real());
    }
    OlsFit fit = fitOls(x, y);
    EXPECT_LT(fit.adjustedR2, 0.1);
}

TEST(Regression, AdjustedBelowPlainR2)
{
    std::vector<double> x{1, 2, 3, 4}, y{1.0, 2.2, 2.8, 4.1};
    OlsFit fit = fitOls(x, y);
    EXPECT_LT(fit.adjustedR2, fit.r2);
    EXPECT_GT(fit.r2, 0.9);
}

TEST(Regression, DegenerateInputs)
{
    EXPECT_EQ(fitOls({}, {}).n, 0u);
    OlsFit one = fitOls({1.0}, {2.0});
    EXPECT_DOUBLE_EQ(one.slope, 0.0);
    // Constant x: no slope recoverable.
    OlsFit flat = fitOls({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(flat.slope, 0.0);
}

TEST(RegressionDeathTest, SizeMismatch)
{
    EXPECT_DEATH(fitOls({1.0, 2.0}, {1.0}), "mismatch");
}
