/**
 * @file
 * Page-remap invalidation: no structure that caches translations — the
 * TLB complex, the software fast path, or the core's data-path micro-TLB
 * — may serve a stale physical frame after AddressSpace::remapPage.
 *
 * The micro-TLB case is a regression test: Core::dataPaddr kept an
 * 8-entry translation ring with no invalidation hook, so before the
 * TranslationListener wiring a remapped page silently kept resolving to
 * its old frame on the data path.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/platform.hh"

using namespace atscale;

namespace
{

/** Endless stream of loads cycling through a fixed set of addresses. */
class FixedRefSource : public RefSource
{
  public:
    explicit FixedRefSource(std::vector<Addr> addrs)
        : addrs_(std::move(addrs))
    {
    }

    bool
    next(Ref &ref) override
    {
        ref.vaddr = addrs_[pos_++ % addrs_.size()];
        ref.instGap = 3;
        ref.isStore = false;
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return addrs_[rng.below(addrs_.size())];
    }

  private:
    std::vector<Addr> addrs_;
    std::size_t pos_ = 0;
};

WorkloadTraits
quietTraits()
{
    // No branches, no mispredictions: every translation is correct-path,
    // which keeps the assertions below about specific pages airtight.
    WorkloadTraits traits;
    traits.branchesPerInstr = 0.0;
    traits.mispredictRate = 0.0;
    return traits;
}

} // namespace

TEST(RemapInvalidation, AddressSpaceMovesThePage)
{
    PlatformParams params;
    Platform platform(params, PageSize::Size4K, quietTraits(), 5);

    Addr base = platform.space.mapRegion("data", 1ull << 20);
    Translation before = platform.space.touch(base + 0x1000);
    PhysAddr old_frame = before.frame;

    const Translation &after = platform.space.remapPage(base + 0x1000);
    EXPECT_NE(after.frame, old_frame);
    // Functional page-table walks agree with the new mapping.
    Translation walked = platform.space.translate(base + 0x1000);
    ASSERT_TRUE(walked.valid);
    EXPECT_EQ(walked.frame, after.frame);
}

TEST(RemapInvalidation, TlbAndFastPathDropTheEntry)
{
    PlatformParams params;
    Platform platform(params, PageSize::Size4K, quietTraits(), 5);

    Addr base = platform.space.mapRegion("data", 1ull << 20);
    Addr vaddr = base + 0x3000;

    // First translation walks and installs; repeats are L1 hits (the
    // second one from the software fast path).
    EXPECT_EQ(platform.mmu.translate(vaddr).tlbLevel, TlbLevel::Miss);
    EXPECT_EQ(platform.mmu.translate(vaddr).tlbLevel, TlbLevel::L1);
    EXPECT_EQ(platform.mmu.translate(vaddr).tlbLevel, TlbLevel::L1);
    ASSERT_GT(platform.mmu.fastCache().hits(), 0u);

    platform.space.remapPage(vaddr);

    // Neither the TLBs nor the fast path may still hold the page: the
    // next translation must walk again.
    EXPECT_EQ(platform.mmu.translate(vaddr).tlbLevel, TlbLevel::Miss);
    EXPECT_GT(platform.mmu.fastCache().invalidations(), 0u);
}

TEST(RemapInvalidation, MicroTlbCannotServeAStaleFrame)
{
    PlatformParams params;
    Platform platform(params, PageSize::Size4K, quietTraits(), 5);

    Addr base = platform.space.mapRegion("data", 1ull << 20);
    Addr vaddr = base + 0x5000;

    // Drive the data path so the micro-TLB caches the page's frame.
    FixedRefSource stream({vaddr});
    platform.core.run(stream, 32);

    PhysAddr cached = 0;
    ASSERT_TRUE(platform.core.microTlbLookup(vaddr, cached));
    EXPECT_EQ(cached, platform.space.translate(vaddr).paddr(vaddr));

    PhysAddr old_paddr = cached;
    platform.space.remapPage(vaddr);

    // The regression: before the TranslationListener wiring this lookup
    // still returned old_paddr.
    PhysAddr after = 0;
    EXPECT_FALSE(platform.core.microTlbLookup(vaddr, after));

    // And after re-executing, the micro-TLB holds the new frame.
    platform.core.run(stream, 32);
    ASSERT_TRUE(platform.core.microTlbLookup(vaddr, after));
    EXPECT_EQ(after, platform.space.translate(vaddr).paddr(vaddr));
    EXPECT_NE(after, old_paddr);
}

TEST(RemapInvalidation, RemapPreservesFastPathExactness)
{
    // A remap mid-run must not break the fast path's bit-exactness: run
    // the same reference sequence with the fast path on and off, with a
    // remap injected at the same point, and demand identical counters
    // and translation state.
    auto runOnce = [](bool fastPath) {
        PlatformParams params;
        params.mmu.fastPath = fastPath;
        Platform platform(params, PageSize::Size4K, quietTraits(), 5);
        Addr base = platform.space.mapRegion("data", 1ull << 20);
        std::vector<Addr> addrs;
        for (int i = 0; i < 8; ++i)
            addrs.push_back(base + static_cast<Addr>(i) * 0x1000);
        FixedRefSource stream(addrs);
        platform.core.run(stream, 512);
        platform.space.remapPage(base + 0x2000);
        platform.core.run(stream, 512);
        return std::pair(platform.core.counters(),
                         platform.mmu.stateHash());
    };

    auto [on_counters, on_hash] = runOnce(true);
    auto [off_counters, off_hash] = runOnce(false);
    on_counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, off_counters.get(id)) << name;
    });
    EXPECT_EQ(on_hash, off_hash);
}
