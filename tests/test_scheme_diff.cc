/**
 * @file
 * Differential proof suite for the translation-scheme seam.
 *
 * The seam's contract has three parts, each proven here:
 *
 *  (A) The radix scheme through the seam is the pre-seam MMU,
 *      bit for bit: rendering the canonical golden RunSpecs must
 *      reproduce the checked-in tests/golden JSON snapshots byte for
 *      byte — the same files test_golden_stats.cc guards, re-verified
 *      here so a seam regression is attributed to the seam.
 *
 *  (B) Scheme lanes are exact: running all four schemes as one
 *      lockstep lane group over one shared reference stream yields,
 *      for every lane, exactly the counters, final translation-state
 *      hash, cache-state hash, and exported JSON bytes of that scheme's
 *      standalone run — across 3 workloads x 3 seeds.
 *
 *  (C) The schemes actually diverge: if two backends produced
 *      identical dynamics the comparison sweeps would be measuring
 *      nothing. no_vm must report zero walk-side events where radix
 *      reports many, and hashed must walk with a different access
 *      profile than radix.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "core/lane_exec.hh"
#include "core/platform.hh"
#include "core/run_export.hh"
#include "mmu/scheme/registry.hh"
#include "perf/derived.hh"
#include "workloads/registry.hh"

using namespace atscale;

#ifndef ATSCALE_GOLDEN_DIR
#error "ATSCALE_GOLDEN_DIR must point at tests/golden"
#endif

namespace
{

/** Workloads spanning the translation-relevant access-pattern space. */
const char *const kWorkloads[] = {
    "memcached-uniform", // uniform random over a big hash space
    "pr-kron",           // skewed (Zipf hub) graph scan
    "mcf-rand",          // pointer chasing (dependent random reads)
};

const std::uint64_t kSeeds[] = {1, 7, 1234};

RunSpec
schemeSpec(const std::string &workload, std::uint64_t seed,
           const std::string &scheme)
{
    RunSpec spec;
    spec.workload = workload;
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 60'000;
    spec.seed = seed;
    spec.scheme = scheme;
    return spec;
}

/** Final state of one simulation, everything exactness covers. */
struct RunState
{
    CounterSet counters;
    std::uint64_t mmuHash = 0;
    std::uint64_t cacheHash = 0;
    std::uint64_t footprint = 0;
    std::string json;
};

std::string
resultJson(const RunResult &result)
{
    std::ostringstream os;
    writeRunResultJson(os, result);
    return os.str();
}

/** One standalone run, driven by hand so the microarchitectural state
 * can be hashed before teardown (mirrors runExperiment exactly). */
RunState
simulateStandalone(const RunSpec &spec)
{
    std::unique_ptr<Workload> workload = createWorkload(spec.workload);
    PlatformParams params;
    params.mmu.scheme = spec.scheme;
    Platform platform(params, spec.pageSize, workload->traits(),
                      spec.seed * 0x9e37 + 7);

    WorkloadConfig wl_config;
    wl_config.footprintBytes = spec.footprintBytes;
    wl_config.seed = spec.seed;
    wl_config.mode = spec.mode;
    std::unique_ptr<RefSource> stream =
        workload->instantiate(platform.space, wl_config);

    platform.core.run(*stream, spec.warmupRefs);
    platform.core.resetCounters();
    platform.mmu.resetStats();
    platform.hierarchy.resetStats();
    platform.core.run(*stream, spec.measureRefs);

    RunState state;
    state.counters = platform.core.counters();
    state.mmuHash = platform.mmu.stateHash();
    state.cacheHash = platform.hierarchy.stateHash();
    state.footprint = platform.space.footprintBytes();

    RunResult result;
    result.spec = spec;
    result.counters = state.counters;
    result.footprintTouched = platform.space.footprintBytes();
    result.pageTableBytes = platform.space.pageTable().nodeBytes();
    state.json = resultJson(result);
    return state;
}

/** All four schemes as one lockstep lane group over a shared stream. */
std::vector<RunState>
simulateSchemeLanes(const std::vector<RunSpec> &specs)
{
    std::vector<LaneJob> lanes;
    lanes.reserve(specs.size());
    for (const RunSpec &spec : specs)
        lanes.push_back(LaneJob{spec, PlatformParams{}, nullptr});

    std::vector<RunState> states(specs.size());
    std::vector<RunResult> results = runLaneGroup(
        lanes, [&](std::size_t lane, const Platform &platform) {
            states[lane].mmuHash = platform.mmu.stateHash();
            states[lane].cacheHash = platform.hierarchy.stateHash();
        });
    for (std::size_t i = 0; i < specs.size(); ++i) {
        states[i].counters = results[i].counters;
        states[i].footprint = results[i].footprintTouched;
        states[i].json = resultJson(results[i]);
    }
    return states;
}

void
expectIdentical(const RunState &lane, const RunState &standalone,
                const std::string &label)
{
    // Every architectural counter, bit for bit.
    lane.counters.forEach([&](EventId id, const char *name, Count value) {
        EXPECT_EQ(value, standalone.counters.get(id)) << label << " "
                                                      << name;
    });

    // Final translation-structure and data-cache state.
    EXPECT_EQ(lane.mmuHash, standalone.mmuHash) << label;
    EXPECT_EQ(lane.cacheHash, standalone.cacheHash) << label;
    EXPECT_EQ(lane.footprint, standalone.footprint) << label;

    // The full exported artifact.
    EXPECT_EQ(lane.json, standalone.json) << label;
}

class SchemeDiff
    : public ::testing::TestWithParam<std::tuple<const char *, std::uint64_t>>
{
  protected:
    static void
    SetUpTestSuite()
    {
        // Every run must execute: cached results carry no lane state.
        unsetenv("ATSCALE_CACHE_DIR");
    }
};

} // namespace

// (A) Radix through the seam reproduces the checked-in goldens.
TEST(SchemeDiff, RadixThroughTheSeamMatchesGoldenSnapshots)
{
    unsetenv("ATSCALE_CACHE_DIR");
    struct GoldenCase
    {
        const char *workload;
        PageSize pageSize;
    };
    const GoldenCase cases[] = {
        {"bfs-urand", PageSize::Size4K}, {"bfs-urand", PageSize::Size2M},
        {"pr-kron", PageSize::Size4K},   {"pr-kron", PageSize::Size2M},
        {"mcf-rand", PageSize::Size4K},  {"mcf-rand", PageSize::Size2M},
    };
    for (const GoldenCase &c : cases) {
        RunSpec spec;
        spec.workload = c.workload;
        spec.footprintBytes = 1ull << 24;
        spec.pageSize = c.pageSize;
        spec.warmupRefs = 20'000;
        spec.measureRefs = 60'000;
        spec.seed = 3;
        ASSERT_EQ(spec.scheme, "radix") << "radix is the default";

        std::string path =
            std::string(ATSCALE_GOLDEN_DIR) + "/" + spec.fileTag() + ".json";
        std::ifstream in(path);
        ASSERT_TRUE(in) << "missing golden file " << path;
        std::stringstream buf;
        buf << in.rdbuf();

        EXPECT_EQ(resultJson(runExperiment(spec)), buf.str())
            << spec.fileTag()
            << ": the radix scheme drifted from the pre-seam MMU";
    }
}

// (B) Four scheme lanes over one shared stream == four standalone runs.
TEST_P(SchemeDiff, SchemeLanesMatchStandaloneBitForBit)
{
    const auto [workload, seed] = GetParam();
    std::vector<RunSpec> specs;
    specs.reserve(schemeNames().size());
    for (const std::string &scheme : schemeNames())
        specs.push_back(schemeSpec(workload, seed, scheme));

    // All four schemes share a stream identity: one lane group.
    for (const RunSpec &spec : specs)
        ASSERT_EQ(spec.laneGroupKey(), specs.front().laneGroupKey());

    std::vector<RunState> lanes = simulateSchemeLanes(specs);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        expectIdentical(lanes[i], simulateStandalone(specs[i]),
                        specs[i].scheme);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SchemeDiff,
    ::testing::Combine(::testing::ValuesIn(kWorkloads),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<SchemeDiff::ParamType> &suite_info) {
        std::string name = std::get<0>(suite_info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_s" + std::to_string(std::get<1>(suite_info.param));
    });

// (C) The backends measurably diverge — the sweeps compare something.
TEST(SchemeDiff, SchemesActuallyDiverge)
{
    unsetenv("ATSCALE_CACHE_DIR");
    RunState radix =
        simulateStandalone(schemeSpec("memcached-uniform", 7, "radix"));
    RunState hashed =
        simulateStandalone(schemeSpec("memcached-uniform", 7, "hashed"));
    RunState no_vm =
        simulateStandalone(schemeSpec("memcached-uniform", 7, "no_vm"));

    // Radix at this footprint misses the TLB and walks.
    Count radix_walks =
        radix.counters.get(EventId::DtlbLoadMissesMissCausesAWalk) +
        radix.counters.get(EventId::DtlbStoreMissesMissCausesAWalk);
    EXPECT_GT(radix_walks, 0u);

    // no_vm reports no translation events at all.
    EXPECT_EQ(no_vm.counters.get(EventId::DtlbLoadMissesMissCausesAWalk),
              0u);
    EXPECT_EQ(no_vm.counters.get(EventId::DtlbLoadMissesWalkDuration), 0u);
    EXPECT_EQ(no_vm.counters.get(EventId::PageWalkerLoadsDtlbMemory), 0u);

    // hashed walks the inverted table instead of the radix tree: the
    // walk-side dynamics must differ somewhere (the PSC-assisted radix
    // descent and the hash-bucket probe both average ~1 access, so the
    // claim is "different", not a direction).
    WcpiTerms radix_terms = wcpiTerms(radix.counters);
    WcpiTerms hashed_terms = wcpiTerms(hashed.counters);
    EXPECT_GT(radix_terms.ptwAccessesPerWalk, 0.0);
    EXPECT_GT(hashed_terms.ptwAccessesPerWalk, 0.0);
    int differing = 0;
    radix.counters.forEach([&](EventId id, const char *, Count value) {
        if (value != hashed.counters.get(id))
            ++differing;
    });
    EXPECT_GT(differing, 0) << "hashed reproduced radix exactly — the "
                               "scheme comparison measures nothing";
}
