/**
 * @file
 * Behavioral unit tests for the pluggable translation schemes: the
 * registry's closed vocabulary, the MMU facade's radix-only accessor
 * guard, and each non-radix backend's cost model and invalidation
 * semantics (hashed table mirroring/remap, cache-parked TLB probe
 * behavior, no_vm's fixed software charge). The radix scheme itself is
 * covered by test_mmu.cc (unchanged through the seam) and the byte-
 * identity suites (test_scheme_diff.cc, test_golden_stats.cc).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/experiment.hh"
#include "mmu/mmu.hh"
#include "mmu/scheme/cache_tlb_scheme.hh"
#include "mmu/scheme/hashed_scheme.hh"
#include "mmu/scheme/no_vm_scheme.hh"
#include "mmu/scheme/registry.hh"

using namespace atscale;

namespace
{

/** The shared simulation substrate every scheme is constructed over. */
class SchemeTest : public ::testing::Test
{
  protected:
    SchemeTest() : alloc(1ull << 34), space(mem, alloc, PageSize::Size4K)
    {
        base = space.mapRegion("data", 64ull << 20);
    }

    MmuParams
    paramsFor(const std::string &scheme)
    {
        MmuParams params;
        params.scheme = scheme;
        return params;
    }

    PhysicalMemory mem;
    FrameAllocator alloc;
    CacheHierarchy hierarchy;
    AddressSpace space;
    Addr base = 0;
};

} // namespace

// ---------------------------------------------------------------- registry

TEST(SchemeRegistry, VocabularyIsClosedAndOrdered)
{
    const std::vector<std::string> &names = schemeNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names[0], "radix");
    EXPECT_EQ(names[1], "hashed");
    EXPECT_EQ(names[2], "cache_tlb");
    EXPECT_EQ(names[3], "no_vm");

    for (const std::string &name : names)
        EXPECT_TRUE(isTranslationScheme(name)) << name;
    EXPECT_FALSE(isTranslationScheme("bogus"));
    EXPECT_FALSE(isTranslationScheme(""));
    EXPECT_FALSE(isTranslationScheme("Radix")) << "names are exact";

    EXPECT_EQ(schemeNameList(), "radix, hashed, cache_tlb, no_vm");
}

TEST_F(SchemeTest, UnknownSchemeNameIsFatal)
{
    MmuParams params = paramsFor("bogus");
    EXPECT_DEATH(Mmu(space, mem, hierarchy, params, &alloc),
                 "unknown translation scheme");
}

TEST_F(SchemeTest, StorageBackedSchemesRequireAnAllocator)
{
    // hashed and cache_tlb allocate simulated physical storage; handing
    // them no allocator is a construction error, not a silent fallback.
    EXPECT_DEATH(Mmu(space, mem, hierarchy, paramsFor("hashed")),
                 "frame allocator");
    EXPECT_DEATH(Mmu(space, mem, hierarchy, paramsFor("cache_tlb")),
                 "frame allocator");
    // radix and no_vm never touch it.
    Mmu radix(space, mem, hierarchy, paramsFor("radix"));
    Mmu no_vm(space, mem, hierarchy, paramsFor("no_vm"));
    EXPECT_STREQ(radix.schemeName(), "radix");
    EXPECT_STREQ(no_vm.schemeName(), "no_vm");
}

// ------------------------------------------------------------------ facade

TEST_F(SchemeTest, FacadeReportsTheActiveScheme)
{
    for (const std::string &name : schemeNames()) {
        Mmu mmu(space, mem, hierarchy, paramsFor(name), &alloc);
        EXPECT_STREQ(mmu.schemeName(), name.c_str());
        EXPECT_STREQ(mmu.scheme().name(), name.c_str());
    }
}

TEST_F(SchemeTest, RadixOnlyAccessorsAreFatalUnderOtherSchemes)
{
    Mmu mmu(space, mem, hierarchy, paramsFor("no_vm"));
    EXPECT_DEATH(mmu.tlb(), "radix-only");
    EXPECT_DEATH(mmu.walker(), "radix-only");
    EXPECT_DEATH(mmu.pscs(), "radix-only");

    // Under the default scheme they work exactly as before the seam.
    Mmu radix(space, mem, hierarchy);
    radix.translate(base);
    EXPECT_GT(radix.tlb().lookups(), 0u);
}

TEST_F(SchemeTest, FastPathKnobIsANoOpForSchemesWithoutOne)
{
    Mmu mmu(space, mem, hierarchy, paramsFor("no_vm"));
    EXPECT_FALSE(mmu.fastPathEnabled());
    mmu.setFastPath(true);
    EXPECT_FALSE(mmu.fastPathEnabled()) << "no_vm has no fast path";

    Mmu hashed(space, mem, hierarchy, paramsFor("hashed"), &alloc);
    EXPECT_TRUE(hashed.fastPathEnabled());
    hashed.setFastPath(false);
    EXPECT_FALSE(hashed.fastPathEnabled());
}

// ------------------------------------------------------------------- no_vm

TEST_F(SchemeTest, NoVmChargesAFixedSoftwareCostAndNothingElse)
{
    MmuParams params = paramsFor("no_vm");
    params.noVm.perAccessCycles = 7;
    NoVmScheme scheme(params);

    Count ptw_before = hierarchy.kindCount(AccessKind::PtwLoad);
    for (int i = 0; i < 5; ++i) {
        MmuResult r = scheme.translate(base + i * pageSize4K, false,
                                       unlimitedWalkBudget);
        // Reports as an L1 hit: zero TLB/walk events reach the counters.
        EXPECT_EQ(r.tlbLevel, TlbLevel::L1);
        EXPECT_EQ(r.tlbExtraLatency, 0u);
        EXPECT_EQ(r.schemeExtraCycles, 7u);
    }
    EXPECT_EQ(scheme.accesses(), 5u);
    // No translation hardware: nothing touches the cache hierarchy.
    EXPECT_EQ(hierarchy.kindCount(AccessKind::PtwLoad), ptw_before);

    std::uint64_t busy = scheme.stateHash();
    scheme.resetStats();
    EXPECT_EQ(scheme.accesses(), 0u);
    EXPECT_NE(busy, scheme.stateHash()) << "hash covers the access count";
}

TEST(NoVmExperiment, WalkSideCountersVanishAndTheCostShowsInCycles)
{
    // End to end: a no_vm run reports zero TLB-miss/walk events (the
    // Eq-1 walk terms vanish) while the per-access software cost is
    // charged as core stall cycles.
    unsetenv("ATSCALE_CACHE_DIR");
    RunSpec spec;
    spec.workload = "bfs-urand";
    spec.footprintBytes = 1ull << 23;
    spec.warmupRefs = 5'000;
    spec.measureRefs = 20'000;
    spec.seed = 5;
    spec.scheme = "no_vm";

    RunResult charged = runExperiment(spec);
    const EventId walk_side[] = {
        EventId::MemUopsRetiredStlbMissLoads,
        EventId::MemUopsRetiredStlbMissStores,
        EventId::DtlbLoadMissesMissCausesAWalk,
        EventId::DtlbStoreMissesMissCausesAWalk,
        EventId::DtlbLoadMissesWalkCompleted,
        EventId::DtlbStoreMissesWalkCompleted,
        EventId::DtlbLoadMissesWalkDuration,
        EventId::DtlbStoreMissesWalkDuration,
        EventId::DtlbLoadMissesStlbHit,
        EventId::DtlbStoreMissesStlbHit,
        EventId::PageWalkerLoadsDtlbL1,
        EventId::PageWalkerLoadsDtlbL2,
        EventId::PageWalkerLoadsDtlbL3,
        EventId::PageWalkerLoadsDtlbMemory,
    };
    for (EventId id : walk_side)
        EXPECT_EQ(charged.counters.get(id), 0u) << eventName(id);

    // Same run with the software charge zeroed: every counter matches
    // except the cycle count, which must drop.
    PlatformParams free_params;
    free_params.mmu.noVm.perAccessCycles = 0;
    RunSpec free_spec = spec;
    free_spec.platformTag = "novm0";
    RunResult free_run = runExperiment(free_spec, free_params);
    EXPECT_EQ(charged.instructions(), free_run.instructions());
    EXPECT_GT(charged.cycles(), free_run.cycles());
}

// ------------------------------------------------------------------ hashed

TEST_F(SchemeTest, HashedMissMirrorsTheMappingAndWalksTheTable)
{
    HashedScheme scheme(space, mem, hierarchy, alloc, paramsFor("hashed"));
    EXPECT_EQ(scheme.table(), nullptr) << "table is built lazily";

    MmuResult first = scheme.translate(base, false, unlimitedWalkBudget);
    EXPECT_EQ(first.tlbLevel, TlbLevel::Miss);
    ASSERT_TRUE(first.walk().completed);
    EXPECT_FALSE(first.walk().faulted);
    EXPECT_EQ(first.pageSize, PageSize::Size4K);
    EXPECT_GE(first.walk().ptwAccesses, 1u);
    // Eq-1 synthesis: no PSC skipping exists, the walk "starts" at the
    // leaf and the first bucket load's service level is recorded.
    EXPECT_EQ(first.walk().startLevel, 0);
    EXPECT_GE(first.walk().hitLevelAt[0], 0);
    EXPECT_EQ(first.walk().translation.frame, space.translate(base).frame);

    ASSERT_NE(scheme.table(), nullptr);
    EXPECT_EQ(scheme.walksInitiated(), 1u);
    EXPECT_GE(scheme.table()->size(), 1u);

    // Install happened: the next access to the page is a TLB hit.
    MmuResult second = scheme.translate(base + 0x40, false,
                                        unlimitedWalkBudget);
    EXPECT_EQ(second.tlbLevel, TlbLevel::L1);
}

TEST_F(SchemeTest, HashedWalkBudgetAborts)
{
    MmuParams params = paramsFor("hashed");
    HashedScheme scheme(space, mem, hierarchy, alloc, params);

    // A budget the hash unit's startup alone exhausts: squashed before
    // any bucket load, exactly like a squashed radix walk.
    MmuResult squashed = scheme.translate(base, false,
                                          params.hashed.startupCycles);
    EXPECT_EQ(squashed.tlbLevel, TlbLevel::Miss);
    EXPECT_FALSE(squashed.walk().completed);
    EXPECT_FALSE(squashed.walk().faulted);
    EXPECT_EQ(squashed.walk().ptwAccesses, 0u);
    EXPECT_LE(squashed.walk().cycles, params.hashed.startupCycles);
    EXPECT_EQ(scheme.walksAborted(), 1u);

    // Aborted walks must not install: the retry misses and completes.
    MmuResult retry = scheme.translate(base, false, unlimitedWalkBudget);
    EXPECT_EQ(retry.tlbLevel, TlbLevel::Miss);
    EXPECT_TRUE(retry.walk().completed);
}

TEST_F(SchemeTest, HashedSpeculativeMissDoesNotDemandPage)
{
    HashedScheme scheme(space, mem, hierarchy, alloc, paramsFor("hashed"));
    Addr fresh = base + 100 * pageSize4K;
    MmuResult spec = scheme.translate(fresh, true, unlimitedWalkBudget);
    EXPECT_EQ(spec.tlbLevel, TlbLevel::Miss);
    EXPECT_TRUE(spec.walk().faulted) << "nothing mapped, nothing found";
    EXPECT_FALSE(space.translate(fresh).valid);
}

TEST_F(SchemeTest, HashedRemapPageRefreshesTheMirroredMapping)
{
    // The satellite case: AddressSpace::remapPage migrates a page the
    // inverted table has already mirrored. The listener chain (space ->
    // Mmu -> scheme) must refresh the mirrored entry in place, or the
    // hash walk keeps serving the dead frame.
    MmuParams params = paramsFor("hashed");
    params.fastPath = false; // exercise the timed path on every access
    Mmu mmu(space, mem, hierarchy, params, &alloc);
    space.addTranslationListener(&mmu);

    MmuResult before = mmu.translate(base);
    ASSERT_TRUE(before.walk().completed);
    PhysAddr old_frame = before.walk().translation.frame;

    Translation moved = space.remapPage(base);
    ASSERT_NE(moved.frame, old_frame);

    // TLB entry dropped, mirrored entry repointed: the re-walk finds
    // the new frame.
    MmuResult after = mmu.translate(base);
    EXPECT_EQ(after.tlbLevel, TlbLevel::Miss);
    ASSERT_TRUE(after.walk().completed);
    EXPECT_EQ(after.walk().translation.frame, moved.frame);
}

// --------------------------------------------------------------- cache_tlb

namespace
{

/** cache_tlb with a tiny TLB so parked entries outlive TLB residency. */
MmuParams
tinyTlbCacheTlbParams()
{
    MmuParams params;
    params.scheme = "cache_tlb";
    params.fastPath = false;
    params.tlb.l1_4k = {1, 2, ReplPolicy::Lru}; // 2 entries
    params.tlb.l2 = {1, 2, ReplPolicy::Lru};    // 2 entries
    params.cacheTlb.parkLines = 1u << 10;
    return params;
}

} // namespace

TEST_F(SchemeTest, CacheTlbParksWalkedTranslationsAndHitsThem)
{
    MmuParams params = tinyTlbCacheTlbParams();
    CacheTlbScheme scheme(space, mem, hierarchy, alloc, params);

    // Touch enough pages to evict page 0 from the 2+2-entry TLB complex
    // while its parked line stays cache-resident.
    const int pages = 16;
    for (int p = 0; p < pages; ++p)
        scheme.translate(base + p * pageSize4K, false, unlimitedWalkBudget);
    EXPECT_EQ(scheme.parkInstalls(), static_cast<Count>(pages));
    EXPECT_EQ(scheme.parkMisses(), static_cast<Count>(pages));

    // Revisit page 0: TLB miss, but the park probe resolves it in one
    // access — the Victima second chance.
    Count hits_before = scheme.parkHits();
    MmuResult revisit =
        scheme.translate(base, false, unlimitedWalkBudget);
    EXPECT_EQ(revisit.tlbLevel, TlbLevel::Miss);
    ASSERT_TRUE(revisit.walk().completed);
    EXPECT_EQ(scheme.parkHits(), hits_before + 1);
    EXPECT_EQ(revisit.walk().ptwAccesses, 1u) << "park hit = 1-access walk";
    EXPECT_EQ(revisit.walk().startLevel, 0);
    EXPECT_EQ(revisit.walk().translation.frame, space.translate(base).frame);
}

TEST_F(SchemeTest, CacheTlbParkMissChargesTheProbeOnTopOfTheWalk)
{
    MmuParams params = tinyTlbCacheTlbParams();
    CacheTlbScheme scheme(space, mem, hierarchy, alloc, params);

    MmuResult cold = scheme.translate(base, false, unlimitedWalkBudget);
    ASSERT_TRUE(cold.walk().completed);
    EXPECT_EQ(scheme.parkMisses(), 1u);
    // The probe is accounted inside the walk: at least the probe access
    // plus the radix walk's loads.
    EXPECT_GE(cold.walk().ptwAccesses, 2u);
}

TEST_F(SchemeTest, CacheTlbInvalidatePageDropsTheParkedEntry)
{
    MmuParams params = tinyTlbCacheTlbParams();
    CacheTlbScheme scheme(space, mem, hierarchy, alloc, params);

    for (int p = 0; p < 16; ++p)
        scheme.translate(base + p * pageSize4K, false, unlimitedWalkBudget);
    std::uint64_t parked = scheme.stateHash();

    scheme.invalidatePage(base, PageSize::Size4K);
    EXPECT_NE(scheme.stateHash(), parked) << "park slot dropped";

    // The revisit can no longer be served by the park.
    Count hits_before = scheme.parkHits();
    Count misses_before = scheme.parkMisses();
    scheme.translate(base, false, unlimitedWalkBudget);
    EXPECT_EQ(scheme.parkHits(), hits_before);
    EXPECT_EQ(scheme.parkMisses(), misses_before + 1);
}

TEST_F(SchemeTest, CacheTlbSingleLineParkCountsConflicts)
{
    MmuParams params = tinyTlbCacheTlbParams();
    params.cacheTlb.parkLines = 1; // every VPN collides on one slot
    CacheTlbScheme scheme(space, mem, hierarchy, alloc, params);
    EXPECT_EQ(scheme.parkLines(), 1u);

    scheme.translate(base, false, unlimitedWalkBudget);
    EXPECT_EQ(scheme.parkConflicts(), 0u);
    scheme.translate(base + pageSize4K, false, unlimitedWalkBudget);
    EXPECT_EQ(scheme.parkConflicts(), 1u) << "second install evicts first";
}

TEST_F(SchemeTest, CacheTlbFlushAllEmptiesThePark)
{
    MmuParams params = tinyTlbCacheTlbParams();
    CacheTlbScheme scheme(space, mem, hierarchy, alloc, params);
    for (int p = 0; p < 8; ++p)
        scheme.translate(base + p * pageSize4K, false, unlimitedWalkBudget);

    scheme.flushAll();
    Count hits_before = scheme.parkHits();
    scheme.translate(base, false, unlimitedWalkBudget);
    EXPECT_EQ(scheme.parkHits(), hits_before) << "no parked entry survives";
}
