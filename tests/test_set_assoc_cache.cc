/**
 * @file
 * Unit and property tests for the generic set-associative array.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/set_assoc_cache.hh"

using namespace atscale;

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache("t", {4, 2, ReplPolicy::Lru});
    EXPECT_FALSE(cache.access(0x10));
    cache.fill(0x10);
    EXPECT_TRUE(cache.access(0x10));
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, LruEvictsOldest)
{
    // 1 set, 2 ways.
    SetAssocCache cache("t", {1, 2, ReplPolicy::Lru});
    cache.fill(1);
    cache.fill(2);
    cache.access(1);   // 1 is now MRU
    cache.fill(3);     // must evict 2
    EXPECT_TRUE(cache.probe(1));
    EXPECT_FALSE(cache.probe(2));
    EXPECT_TRUE(cache.probe(3));
}

TEST(SetAssocCache, SetIndexingIsolatesSets)
{
    SetAssocCache cache("t", {4, 1, ReplPolicy::Lru});
    cache.fill(0); // set 0
    cache.fill(1); // set 1
    cache.fill(4); // set 0 again: evicts key 0 (1-way)
    EXPECT_FALSE(cache.probe(0));
    EXPECT_TRUE(cache.probe(1));
    EXPECT_TRUE(cache.probe(4));
}

TEST(SetAssocCache, ProbeDoesNotTouchLru)
{
    SetAssocCache cache("t", {1, 2, ReplPolicy::Lru});
    cache.fill(1);
    cache.fill(2);
    cache.probe(1); // must NOT refresh 1
    cache.fill(3);  // evicts LRU = 1
    EXPECT_FALSE(cache.probe(1));
    EXPECT_TRUE(cache.probe(2));
}

TEST(SetAssocCache, FillIsIdempotentForPresentKeys)
{
    SetAssocCache cache("t", {1, 2, ReplPolicy::Lru});
    cache.fill(1);
    cache.fill(1);
    cache.fill(2);
    EXPECT_EQ(cache.validEntries(), 2u);
    EXPECT_TRUE(cache.probe(1));
}

TEST(SetAssocCache, InvalidateAndFlush)
{
    SetAssocCache cache("t", {2, 2, ReplPolicy::Lru});
    cache.fill(1);
    cache.fill(2);
    EXPECT_TRUE(cache.invalidate(1));
    EXPECT_FALSE(cache.invalidate(1));
    EXPECT_FALSE(cache.probe(1));
    cache.flush();
    EXPECT_EQ(cache.validEntries(), 0u);
    EXPECT_FALSE(cache.probe(2));
}

TEST(SetAssocCache, TreePlruNeverEvictsJustTouched)
{
    SetAssocCache cache("t", {1, 8, ReplPolicy::TreePlru});
    for (std::uint64_t k = 0; k < 8; ++k)
        cache.fill(k);
    for (int round = 0; round < 100; ++round) {
        std::uint64_t hot = round % 8;
        if (!cache.probe(hot))
            cache.fill(hot);
        cache.access(hot);
        cache.fill(1000 + round); // evicts someone, never `hot`
        EXPECT_TRUE(cache.probe(hot)) << "round " << round;
    }
}

TEST(SetAssocCache, RandomPolicyStillCachesWorkingSet)
{
    SetAssocCache cache("t", {16, 4, ReplPolicy::Random}, 99);
    for (std::uint64_t k = 0; k < 64; ++k)
        cache.fill(k);
    // All 64 keys fit exactly; every one must be present.
    for (std::uint64_t k = 0; k < 64; ++k)
        EXPECT_TRUE(cache.probe(k));
}

TEST(SetAssocCacheDeathTest, BadGeometry)
{
    EXPECT_DEATH(SetAssocCache("t", {3, 2, ReplPolicy::Lru}), "power of 2");
    EXPECT_DEATH(SetAssocCache("t", {4, 0, ReplPolicy::Lru}), "way");
    EXPECT_DEATH(SetAssocCache("t", {1, 64, ReplPolicy::TreePlru}),
                 "at most 32");
}

TEST(ReplPolicy, Names)
{
    EXPECT_STREQ(replPolicyName(ReplPolicy::Lru), "LRU");
    EXPECT_STREQ(replPolicyName(ReplPolicy::TreePlru), "TreePLRU");
    EXPECT_STREQ(replPolicyName(ReplPolicy::Random), "Random");
}

/**
 * Property sweep across geometries and policies: a working set no larger
 * than the capacity, accessed repeatedly, eventually stays resident
 * (no thrashing for any policy), and validEntries never exceeds capacity.
 */
struct GeometryCase
{
    CacheGeometry geom;
};

class CacheProperty : public ::testing::TestWithParam<GeometryCase>
{
};

TEST_P(CacheProperty, WorkingSetWithinCapacityConverges)
{
    const CacheGeometry &geom = GetParam().geom;
    SetAssocCache cache("p", geom, 7);
    // Keys chosen to spread uniformly across sets.
    Count capacity = cache.capacity();
    for (int round = 0; round < 4; ++round) {
        for (Count k = 0; k < capacity; ++k) {
            if (!cache.access(k))
                cache.fill(k);
        }
    }
    EXPECT_LE(cache.validEntries(), capacity);
    // After convergence every key hits.
    cache.resetStats();
    for (Count k = 0; k < capacity; ++k)
        EXPECT_TRUE(cache.access(k)) << "key " << k;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(GeometryCase{{1, 4, ReplPolicy::Lru}},
                      GeometryCase{{16, 4, ReplPolicy::Lru}},
                      GeometryCase{{64, 8, ReplPolicy::TreePlru}},
                      GeometryCase{{8, 20, ReplPolicy::Lru}},
                      GeometryCase{{128, 8, ReplPolicy::Lru}},
                      GeometryCase{{1, 32, ReplPolicy::TreePlru}}));
