/**
 * @file
 * Sharded-sweep suite: --shard=i/N partitioning, the partial-aggregate
 * interchange format (core/sweep_partial.hh), and the merge contract —
 * N shards' artifacts, merged, are byte-identical to one machine's run.
 *
 * Three surfaces:
 *
 *  (A) Flag/partition mechanics: --shard parses strictly; N shard
 *      invocations of the same job list cover every unique job exactly
 *      once, with lane groups assigned whole to one shard.
 *
 *  (B) Partial aggregates: SweepPartial round-trips through its file
 *      format exactly, and reassembling two shards' partials renders
 *      the byte-identical JSON aggregate of the unsharded sweep — at
 *      differing thread counts. (tools/sweep/merge_runs wraps exactly
 *      this reassembly; the CI sharded-merge job exercises the binary.)
 *
 *  (C) Cache merge: the union of two shards' run-cache directories
 *      fully warms an unsharded rerun, whose results byte-match a
 *      single-machine run.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/run_export.hh"
#include "core/sweep.hh"
#include "core/sweep_partial.hh"

using namespace atscale;

namespace
{

/** Scoped ATSCALE_SHARD setting, always cleared on exit. */
class ScopedShard
{
  public:
    ScopedShard(unsigned index, unsigned count)
    {
        std::string value =
            std::to_string(index) + "/" + std::to_string(count);
        setenv("ATSCALE_SHARD", value.c_str(), 1);
    }

    ~ScopedShard() { unsetenv("ATSCALE_SHARD"); }
};

/** Scoped private cache directory (empty name disables the cache). */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &name)
    {
        if (!name.empty()) {
            path_ = ::testing::TempDir() + "/" + name;
            std::filesystem::remove_all(path_);
            std::filesystem::create_directories(path_);
            setenv("ATSCALE_CACHE_DIR", path_.c_str(), 1);
        } else {
            unsetenv("ATSCALE_CACHE_DIR");
        }
    }

    ~ScopedCacheDir()
    {
        unsetenv("ATSCALE_CACHE_DIR");
        if (!path_.empty())
            std::filesystem::remove_all(path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

RunSpec
quickSpec(const std::string &workload, std::uint64_t seed = 1)
{
    RunSpec spec;
    spec.workload = workload;
    spec.footprintBytes = 1ull << 24;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 50'000;
    spec.seed = seed;
    return spec;
}

/** The sweep under test: four distinct jobs plus a duplicate declared
 * slot, including a two-scheme lane group (same laneGroupKey) that must
 * land whole on one shard. */
std::vector<RunSpec>
shardedJobs()
{
    std::vector<RunSpec> jobs;
    jobs.push_back(quickSpec("pr-kron"));
    RunSpec lane_mate = quickSpec("pr-kron");
    lane_mate.scheme = "no_vm";
    jobs.push_back(lane_mate);
    jobs.push_back(quickSpec("cc-urand"));
    jobs.push_back(quickSpec("mcf-rand", 3));
    jobs.push_back(jobs.front()); // duplicate declared slot
    return jobs;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::string
sweepBytes(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeRunResultsJson(os, results);
    return os.str();
}

/** Reassemble shard partials exactly as tools/sweep/merge_runs does. */
void
mergePartialsTo(const std::vector<std::string> &paths,
                const std::string &out)
{
    std::vector<RunResult> results;
    std::vector<char> seen;
    double freq = 2.5;
    for (const std::string &path : paths) {
        SweepPartial partial;
        std::string error;
        ASSERT_TRUE(loadSweepPartialFile(path, partial, error)) << error;
        if (results.empty()) {
            results.resize(partial.totalJobs);
            seen.assign(partial.totalJobs, 0);
            freq = partial.freqGHz;
        } else {
            ASSERT_EQ(partial.totalJobs, results.size()) << path;
            ASSERT_EQ(partial.freqGHz, freq) << path;
        }
        for (SweepPartial::Entry &entry : partial.entries) {
            ASSERT_LT(entry.index, results.size());
            ASSERT_FALSE(seen[entry.index])
                << "job " << entry.index << " covered twice";
            seen[entry.index] = 1;
            results[entry.index] = std::move(entry.result);
        }
    }
    for (std::size_t i = 0; i < seen.size(); ++i)
        ASSERT_TRUE(seen[i]) << "job " << i << " missing from partials";
    writeRunResultsJsonFile(out, results, freq);
}

} // namespace

TEST(ShardFlag, ParsesAndRejectsStrictly)
{
    unsetenv("ATSCALE_SHARD");
    EXPECT_FALSE(shardSpec().active());

    char prog[] = "bench";
    std::string error;
    {
        char flag[] = "--shard=2/4";
        char *argv[] = {prog, flag, nullptr};
        int argc = 2;
        ASSERT_TRUE(extractSweepFlags(argc, argv, error)) << error;
        EXPECT_EQ(argc, 1);
        ShardSpec shard = shardSpec();
        EXPECT_TRUE(shard.active());
        EXPECT_EQ(shard.index, 2u);
        EXPECT_EQ(shard.count, 4u);
        unsetenv("ATSCALE_SHARD");
    }

    // 1/1 is a degenerate but valid request: one shard owning all.
    {
        char flag[] = "--shard=1/1";
        char *argv[] = {prog, flag, nullptr};
        int argc = 2;
        ASSERT_TRUE(extractSweepFlags(argc, argv, error)) << error;
        EXPECT_FALSE(shardSpec().active());
        unsetenv("ATSCALE_SHARD");
    }

    for (const char *bad :
         {"--shard=3/2", "--shard=0/2", "--shard=1/0", "--shard=zoo",
          "--shard=1/2x", "--shard", "--shard="}) {
        std::vector<char> flag(bad, bad + std::strlen(bad) + 1);
        char *argv[] = {prog, flag.data(), nullptr};
        int argc = 2;
        error.clear();
        EXPECT_FALSE(extractSweepFlags(argc, argv, error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
        unsetenv("ATSCALE_SHARD");
    }
}

TEST(SweepPartial, FileFormatRoundTripsExactly)
{
    SweepPartial partial;
    partial.totalJobs = 7;
    partial.freqGHz = 2.5;

    // Entries with both default and non-default spec fields so omitted
    // defaults are exercised in both directions.
    SweepPartial::Entry plain;
    plain.index = 2;
    plain.result.spec = quickSpec("pr-kron");
    plain.result.counters.add(EventId::CpuClkUnhalted, 123'456'789);
    plain.result.counters.add(EventId::InstRetired, 987);
    plain.result.footprintTouched = 16 << 20;
    plain.result.pageTableBytes = 12'288;
    partial.entries.push_back(plain);

    SweepPartial::Entry fancy;
    fancy.index = 5;
    fancy.result.spec = quickSpec("cc-urand", 9);
    fancy.result.spec.scheme = "hashed";
    fancy.result.spec.fastPath = false;
    fancy.result.spec.pageSize = PageSize::Size2M;
    fancy.result.counters.add(EventId::DtlbLoadMissesWalkCompleted, 42);
    partial.entries.push_back(fancy);

    std::string path = ::testing::TempDir() + "/partial_roundtrip.partial";
    writeSweepPartialFile(path, partial);

    SweepPartial loaded;
    std::string error;
    ASSERT_TRUE(loadSweepPartialFile(path, loaded, error)) << error;
    EXPECT_EQ(loaded.totalJobs, partial.totalJobs);
    EXPECT_EQ(loaded.freqGHz, partial.freqGHz);
    ASSERT_EQ(loaded.entries.size(), partial.entries.size());
    for (std::size_t e = 0; e < partial.entries.size(); ++e) {
        const SweepPartial::Entry &want = partial.entries[e];
        const SweepPartial::Entry &got = loaded.entries[e];
        EXPECT_EQ(got.index, want.index);
        EXPECT_EQ(got.result.spec, want.result.spec);
        EXPECT_EQ(got.result.footprintTouched, want.result.footprintTouched);
        EXPECT_EQ(got.result.pageTableBytes, want.result.pageTableBytes);
        for (int i = 0; i < numEvents; ++i) {
            auto id = static_cast<EventId>(i);
            EXPECT_EQ(got.result.counters.get(id),
                      want.result.counters.get(id));
        }
    }

    // A torn partial is an error, never a silent partial merge.
    std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
    SweepPartial torn;
    EXPECT_FALSE(loadSweepPartialFile(path, torn, error));
    EXPECT_FALSE(error.empty());
    std::filesystem::remove(path);
}

TEST(ShardMerge, TwoShardsReassembleTheSingleMachineAggregate)
{
    ScopedCacheDir cache(""); // observed sweeps bypass it anyway
    // Unit partitioning is a function of the lane setting, so every
    // shard (and the reference) must run with the same one; force lanes
    // on so the lane-group-stays-whole property is actually exercised
    // even on a single-core CI host.
    setenv("ATSCALE_LANES", "1", 1);
    std::string dir = ::testing::TempDir() + "/shard_merge_out";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    const std::vector<RunSpec> jobs = shardedJobs();

    // Single-machine reference, multi-threaded.
    {
        SweepOptions options;
        options.threads = 2;
        options.obs.jsonOut = dir + "/single.json";
        SweepEngine engine(options);
        std::vector<RunResult> results = engine.run(jobs);
        ASSERT_EQ(results.size(), jobs.size());
    }

    // Two shard runs, serial, each writing a partial.
    std::size_t executed_total = 0;
    for (unsigned i = 1; i <= 2; ++i) {
        ScopedShard shard(i, 2);
        SweepOptions options;
        options.obs.jsonOut =
            dir + "/shard" + std::to_string(i) + ".json";
        SweepEngine engine(options);
        std::vector<RunResult> results = engine.run(jobs);
        ASSERT_EQ(results.size(), jobs.size());
        executed_total += engine.progress().completed;
        ASSERT_EQ(engine.writtenOutputs().back(),
                  options.obs.jsonOut + ".partial");
    }
    // Every unique job ran on exactly one shard (4 unique in 5 slots).
    EXPECT_EQ(executed_total, 4u);

    // The shards' partials must cover the declared list disjointly,
    // with the pr-kron lane group (2 declared schemes) kept whole.
    std::vector<std::string> partials = {dir + "/shard1.json.partial",
                                         dir + "/shard2.json.partial"};
    std::string error;
    SweepPartial one;
    SweepPartial two;
    ASSERT_TRUE(loadSweepPartialFile(partials[0], one, error)) << error;
    ASSERT_TRUE(loadSweepPartialFile(partials[1], two, error)) << error;
    EXPECT_EQ(one.totalJobs, jobs.size());
    EXPECT_EQ(two.totalJobs, jobs.size());
    // Slots 0, 1 and 4 are the lane group (0 and 4 duplicates): one
    // shard must own all three declared slots.
    auto owns = [](const SweepPartial &p, std::size_t index) {
        for (const SweepPartial::Entry &entry : p.entries)
            if (entry.index == index)
                return true;
        return false;
    };
    const SweepPartial &lane_owner = owns(one, 0) ? one : two;
    EXPECT_TRUE(owns(lane_owner, 0));
    EXPECT_TRUE(owns(lane_owner, 1));
    EXPECT_TRUE(owns(lane_owner, 4));

    // Reassembled aggregate == single-machine bytes.
    mergePartialsTo(partials, dir + "/merged.json");
    EXPECT_EQ(fileBytes(dir + "/merged.json"),
              fileBytes(dir + "/single.json"));

    std::filesystem::remove_all(dir);
    unsetenv("ATSCALE_LANES");
}

TEST(ShardMerge, MergedCachesFullyWarmAnUnshardedRerun)
{
    const std::vector<RunSpec> jobs = shardedJobs();

    // Reference: single machine, no cache.
    std::string reference;
    {
        ScopedCacheDir cache("");
        SweepEngine engine;
        reference = sweepBytes(engine.run(jobs));
    }

    // Shard runs with private caches.
    std::string cache_a;
    std::string cache_b;
    {
        ScopedCacheDir cache("shard_cache_a");
        cache_a = cache.path();
        ScopedShard shard(1, 2);
        SweepEngine{}.run(jobs);

        // Keep the directory: copy it out before the scope guard wipes.
        std::filesystem::copy(cache_a, cache_a + ".kept");
        cache_a += ".kept";
    }
    {
        ScopedCacheDir cache("shard_cache_b");
        cache_b = cache.path();
        ScopedShard shard(2, 2);
        SweepEngine{}.run(jobs);
        std::filesystem::copy(cache_b, cache_b + ".kept");
        cache_b += ".kept";
    }

    // Union the two cache directories (what merge_runs --cache does) —
    // shard ownership is disjoint, so no collisions to resolve.
    {
        ScopedCacheDir merged("shard_cache_merged");
        for (const std::string &src : {cache_a, cache_b}) {
            for (const auto &it :
                 std::filesystem::directory_iterator(src)) {
                std::filesystem::copy(
                    it.path(), merged.path() + "/" +
                                   it.path().filename().string(),
                    std::filesystem::copy_options::skip_existing);
            }
        }

        SweepEngine engine;
        std::vector<RunResult> warm = engine.run(jobs);
        EXPECT_EQ(engine.progress().cached, 4u)
            << "merged shard caches did not cover the sweep";
        EXPECT_EQ(engine.progress().completed, 0u);
        EXPECT_EQ(sweepBytes(warm), reference);
    }
    std::filesystem::remove_all(cache_a);
    std::filesystem::remove_all(cache_b);
}
