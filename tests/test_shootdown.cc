/**
 * @file
 * Inter-core TLB shootdowns: a page remap initiated while core A runs
 * must drop every other core's cached translation state — L1/L2 TLB,
 * paging-structure caches, fast-path shadow, and data-path micro-TLB —
 * and charge the IPI cost model to the right cores' cycle counters and
 * shootdown statistics.
 *
 * Also pins the TranslationListener registration contract the fan-out
 * rides on: notification order is registration order, removal preserves
 * the relative order of the survivors, re-adding appends at the end,
 * and removing an unknown listener is a no-op.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/stats_registry.hh"
#include "sys/shared_system.hh"

using namespace atscale;

namespace
{

/** Endless stream of loads cycling through a fixed set of addresses. */
class FixedRefSource : public RefSource
{
  public:
    explicit FixedRefSource(std::vector<Addr> addrs)
        : addrs_(std::move(addrs))
    {
    }

    bool
    next(Ref &ref) override
    {
        ref.vaddr = addrs_[pos_++ % addrs_.size()];
        ref.instGap = 3;
        ref.isStore = false;
        return true;
    }

    Addr
    wrongPathAddr(Rng &rng) override
    {
        return addrs_[rng.below(addrs_.size())];
    }

  private:
    std::vector<Addr> addrs_;
    std::size_t pos_ = 0;
};

WorkloadTraits
quietTraits()
{
    // No branches, no mispredictions: every translation is correct-path,
    // which keeps the assertions below about specific pages airtight.
    WorkloadTraits traits;
    traits.branchesPerInstr = 0.0;
    traits.mispredictRate = 0.0;
    return traits;
}

/** A K-core system with every core's translation state warmed on the
 * same page (each core ran a stream over vaddr). */
struct WarmSystem
{
    explicit WarmSystem(std::uint32_t cores)
    {
        SharedSystemParams params;
        params.cores = cores;
        sys = std::make_unique<SharedSystem>(params, PageSize::Size4K,
                                             quietTraits(), 5);
        base = sys->space().mapRegion("data", 1ull << 20);
        vaddr = base + 0x3000;
        for (std::uint32_t k = 0; k < cores; ++k)
            streams.emplace_back(
                std::make_unique<FixedRefSource>(std::vector<Addr>{vaddr}));
        std::vector<RefSource *> raw;
        for (auto &s : streams)
            raw.push_back(s.get());
        sys->run(raw, 64);
    }

    std::vector<RefSource *>
    raw()
    {
        std::vector<RefSource *> out;
        for (auto &s : streams)
            out.push_back(s.get());
        return out;
    }

    std::unique_ptr<SharedSystem> sys;
    std::vector<std::unique_ptr<FixedRefSource>> streams;
    Addr base = 0;
    Addr vaddr = 0;
};

/** Listener that records its name on every notification. */
class RecordingListener : public TranslationListener
{
  public:
    RecordingListener(std::string name, std::vector<std::string> &log)
        : name_(std::move(name)), log_(log)
    {
    }

    void
    pageRemapped(Addr, PageSize) override
    {
        log_.push_back(name_);
    }

  private:
    std::string name_;
    std::vector<std::string> &log_;
};

} // namespace

TEST(Shootdown, RemapDropsEveryRemoteCoresTranslationState)
{
    WarmSystem warm(3);
    SharedSystem &sys = *warm.sys;

    // Every core's TLB, fast-path shadow, and micro-TLB hold the page.
    for (std::uint32_t k = 0; k < 3; ++k) {
        EXPECT_EQ(sys.mmu(k).translate(warm.vaddr).tlbLevel, TlbLevel::L1)
            << "core " << k;
        PhysAddr cached = 0;
        EXPECT_TRUE(sys.core(k).microTlbLookup(warm.vaddr, cached))
            << "core " << k;
        EXPECT_GT(sys.mmu(k).fastCache().hits(), 0u) << "core " << k;
    }
    // And the paging-structure caches hold the page's walk path.
    PhysAddr cr3 = sys.space().pageTable().root();
    EXPECT_LT(sys.mmu(0).pscs().probe(warm.vaddr, cr3).startLevel,
              ptLevels - 1);

    // Core 1 initiates the remap (compaction on its stream).
    sys.setActiveCore(1);
    sys.space().remapPage(warm.vaddr);
    sys.setActiveCore(0);

    for (std::uint32_t k = 0; k < 3; ++k) {
        // The next translation must walk again: no TLB level hit.
        EXPECT_EQ(sys.mmu(k).translate(warm.vaddr).tlbLevel, TlbLevel::Miss)
            << "core " << k;
        // The fast-path shadow dropped its line.
        EXPECT_GT(sys.mmu(k).fastCache().invalidations(), 0u)
            << "core " << k;
        // The data-path micro-TLB cannot serve the stale frame.
        PhysAddr stale = 0;
        EXPECT_FALSE(sys.core(k).microTlbLookup(warm.vaddr, stale))
            << "core " << k;
    }

    // INVLPG semantics: the PSC entries covering the page are gone too
    // (the translate() calls above each re-walked and refilled, so
    // probe on a core that has not re-walked is checked via a fresh
    // system below — here we pin the direct invalidation hook).
    sys.mmu(0).pscs().invalidatePage(warm.vaddr, PageSize::Size4K);
    EXPECT_EQ(sys.mmu(0).pscs().probe(warm.vaddr, cr3).startLevel,
              ptLevels - 1);
}

TEST(Shootdown, PscEntriesCoveringThePageAreInvalidated)
{
    WarmSystem warm(2);
    SharedSystem &sys = *warm.sys;
    PhysAddr cr3 = sys.space().pageTable().root();

    // Warmed: the remote core's PSC enters the walk below the root.
    ASSERT_LT(sys.mmu(1).pscs().probe(warm.vaddr, cr3).startLevel,
              ptLevels - 1);

    sys.setActiveCore(0);
    sys.space().remapPage(warm.vaddr);
    sys.setActiveCore(0);

    // After the shootdown the remote walk restarts from the root.
    EXPECT_EQ(sys.mmu(1).pscs().probe(warm.vaddr, cr3).startLevel,
              ptLevels - 1);
}

TEST(Shootdown, IpiChargesLandOnTheRightCores)
{
    WarmSystem warm(3);
    SharedSystem &sys = *warm.sys;
    const SharedSystemParams &params = sys.params();

    std::vector<Count> before;
    for (std::uint32_t k = 0; k < 3; ++k)
        before.push_back(
            sys.core(k).counters().get(EventId::CpuClkUnhalted));

    // Core 1 initiates one shootdown while parked (outside run()).
    sys.setActiveCore(1);
    sys.space().remapPage(warm.vaddr);
    sys.setActiveCore(0);

    EXPECT_EQ(sys.shootdownsInitiated(1), 1u);
    EXPECT_EQ(sys.shootdownsReceived(1), 0u);
    EXPECT_EQ(sys.shootdownsInitiated(0), 0u);
    EXPECT_EQ(sys.shootdownsReceived(0), 1u);
    EXPECT_EQ(sys.shootdownsReceived(2), 1u);

    const Count initiator_cost = params.shootdownInitiatorCycles +
                                 params.shootdownIpiCycles;
    EXPECT_EQ(sys.shootdownCycles(1), initiator_cost);
    EXPECT_EQ(sys.shootdownCycles(0), params.shootdownIpiCycles);
    EXPECT_EQ(sys.shootdownCycles(2), params.shootdownIpiCycles);

    // Charges are published at the next run() boundary; a zero-length
    // run flushes them without executing any references.
    sys.run(warm.raw(), 0);
    EXPECT_EQ(sys.core(1).counters().get(EventId::CpuClkUnhalted),
              before[1] + initiator_cost);
    EXPECT_EQ(sys.core(0).counters().get(EventId::CpuClkUnhalted),
              before[0] + params.shootdownIpiCycles);
    EXPECT_EQ(sys.core(2).counters().get(EventId::CpuClkUnhalted),
              before[2] + params.shootdownIpiCycles);
    // No instructions retired by the flush itself.
    EXPECT_EQ(sys.shootdownsInitiated(1), 1u);
}

TEST(Shootdown, SingleCoreSystemChargesNothing)
{
    WarmSystem warm(1);
    SharedSystem &sys = *warm.sys;
    Count before = sys.core(0).counters().get(EventId::CpuClkUnhalted);

    sys.space().remapPage(warm.vaddr);
    sys.run(warm.raw(), 0);

    EXPECT_EQ(sys.shootdownsInitiated(0), 0u);
    EXPECT_EQ(sys.shootdownsReceived(0), 0u);
    EXPECT_EQ(sys.shootdownCycles(0), 0u);
    EXPECT_EQ(sys.core(0).counters().get(EventId::CpuClkUnhalted), before);
}

TEST(Shootdown, ResetStatsClearsShootdownCounts)
{
    WarmSystem warm(2);
    SharedSystem &sys = *warm.sys;
    sys.setActiveCore(0);
    sys.space().remapPage(warm.vaddr);
    ASSERT_EQ(sys.shootdownsInitiated(0), 1u);

    sys.resetStats();
    EXPECT_EQ(sys.shootdownsInitiated(0), 0u);
    EXPECT_EQ(sys.shootdownsReceived(1), 0u);
    EXPECT_EQ(sys.shootdownCycles(1), 0u);
}

TEST(Shootdown, StatsRegistryExportsShootdownCounters)
{
    WarmSystem warm(2);
    SharedSystem &sys = *warm.sys;
    sys.setActiveCore(0);
    sys.space().remapPage(warm.vaddr);

    StatsRegistry registry;
    sys.registerStats(registry, "system");
    double initiated = -1, received = -1, total = -1;
    for (const StatsRegistry::Sample &s : registry.snapshot()) {
        if (s.name == "system.core0.shootdowns_initiated")
            initiated = s.value;
        if (s.name == "system.core1.shootdowns_received")
            received = s.value;
        if (s.name == "system.shootdowns_total")
            total = s.value;
    }
    EXPECT_EQ(initiated, 1.0);
    EXPECT_EQ(received, 1.0);
    EXPECT_EQ(total, 1.0);
}

TEST(ListenerRegistration, NotificationFollowsRegistrationOrder)
{
    PhysicalMemory mem;
    FrameAllocator alloc(1ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);
    Addr base = space.mapRegion("data", 1ull << 20);
    space.touch(base);

    std::vector<std::string> log;
    RecordingListener a("A", log), b("B", log), c("C", log);
    space.addTranslationListener(&a);
    space.addTranslationListener(&b);
    space.addTranslationListener(&c);

    space.remapPage(base);
    EXPECT_EQ(log, (std::vector<std::string>{"A", "B", "C"}));

    // Removal preserves the survivors' relative order.
    log.clear();
    space.removeTranslationListener(&b);
    space.remapPage(base);
    EXPECT_EQ(log, (std::vector<std::string>{"A", "C"}));

    // Re-adding appends at the end.
    log.clear();
    space.addTranslationListener(&b);
    space.remapPage(base);
    EXPECT_EQ(log, (std::vector<std::string>{"A", "C", "B"}));

    // Removing a listener that was never registered is a no-op.
    log.clear();
    RecordingListener stranger("X", log);
    space.removeTranslationListener(&stranger);
    space.remapPage(base);
    EXPECT_EQ(log, (std::vector<std::string>{"A", "C", "B"}));

    space.removeTranslationListener(&a);
    space.removeTranslationListener(&b);
    space.removeTranslationListener(&c);
}
