/**
 * @file
 * Unit tests for util/stats.hh.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "util/stats.hh"

using namespace atscale;

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Unbiased sample variance of this classic data set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1);
    s.add(2);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.5);
    h.add(5.5);
    h.add(9.99);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 10);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.bucket(1), 10u);
}

TEST(Histogram, QuantileOfUniformFill)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
    EXPECT_NEAR(h.quantile(0.1), 10.0, 1.5);
}

TEST(Histogram, BucketLoEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 18.0);
}

TEST(Histogram, QuantileOfEmptyIsNaN)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_TRUE(std::isnan(h.quantile(0.0)));
    EXPECT_TRUE(std::isnan(h.quantile(0.5)));
    EXPECT_TRUE(std::isnan(h.quantile(1.0)));
}

TEST(Histogram, PercentilesMatchQuantiles)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    std::vector<double> ps = h.percentiles({0.1, 0.5, 0.9});
    ASSERT_EQ(ps.size(), 3u);
    EXPECT_DOUBLE_EQ(ps[0], h.quantile(0.1));
    EXPECT_DOUBLE_EQ(ps[1], h.quantile(0.5));
    EXPECT_DOUBLE_EQ(ps[2], h.quantile(0.9));
}

TEST(Histogram, PercentilesOfEmptyAreNaN)
{
    Histogram h(0.0, 1.0, 4);
    for (double p : h.percentiles({0.5, 0.99}))
        EXPECT_TRUE(std::isnan(p));
}

TEST(Histogram, MergeAccumulatesAllBuckets)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(-1.0);
    a.add(2.5, 3);
    b.add(2.5, 2);
    b.add(7.5);
    b.add(42.0);
    a.merge(b);
    EXPECT_EQ(a.total(), 8u);
    EXPECT_EQ(a.underflow(), 1u);
    EXPECT_EQ(a.overflow(), 1u);
    EXPECT_EQ(a.bucket(2), 5u);
    EXPECT_EQ(a.bucket(7), 1u);
}

TEST(Histogram, MergeOfEmptyIsIdentity)
{
    Histogram a(0.0, 4.0, 4);
    a.add(1.5, 10);
    Histogram b(0.0, 4.0, 4);
    a.merge(b);
    EXPECT_EQ(a.total(), 10u);
    EXPECT_EQ(a.bucket(1), 10u);
}

TEST(HistogramDeathTest, MergeRejectsDifferentGeometry)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 5);
    EXPECT_DEATH(a.merge(b), "geometry");
}
