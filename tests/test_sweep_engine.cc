/**
 * @file
 * Sweep engine tests: RunSpec value identity (equality, hashing, cache
 * keys), single-flight deduplication, plan() classification, atomic
 * cache writes, --threads flag parsing, and the engine's headline
 * guarantee — byte-identical sweep output regardless of thread count.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "core/run_cache.hh"
#include "core/run_export.hh"
#include "core/sweep.hh"

using namespace atscale;

namespace
{

RunSpec
quickSpec(const std::string &workload = "bfs-urand",
          std::uint64_t footprint = 256ull << 20)
{
    RunSpec spec;
    spec.workload = workload;
    spec.footprintBytes = footprint;
    spec.warmupRefs = 20'000;
    spec.measureRefs = 50'000;
    return spec;
}

/** Scoped private cache directory (empty name disables the cache). */
class ScopedCacheDir
{
  public:
    explicit ScopedCacheDir(const std::string &name)
    {
        if (!name.empty()) {
            path_ = ::testing::TempDir() + "/" + name;
            std::filesystem::remove_all(path_);
            std::filesystem::create_directories(path_);
            setenv("ATSCALE_CACHE_DIR", path_.c_str(), 1);
        } else {
            unsetenv("ATSCALE_CACHE_DIR");
        }
    }

    ~ScopedCacheDir()
    {
        unsetenv("ATSCALE_CACHE_DIR");
        if (!path_.empty())
            std::filesystem::remove_all(path_);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Serialize a sweep the way downstream consumers do (JSON aggregate). */
std::string
sweepBytes(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    writeRunResultsJson(os, results);
    return os.str();
}

/** Serialize a sweep the way the figure CSVs do (one row per run). */
std::string
csvBytes(const std::vector<RunResult> &results)
{
    std::ostringstream os;
    os << "workload,footprint_bytes,page_size,cycles,instructions\n";
    for (const RunResult &r : results) {
        os << r.spec.workload << ',' << r.spec.footprintBytes << ','
           << pageSizeName(r.spec.pageSize) << ',' << r.cycles() << ','
           << r.instructions() << '\n';
    }
    return os.str();
}

} // namespace

TEST(RunSpec, EqualityCoversEveryField)
{
    const RunSpec base = quickSpec();
    EXPECT_EQ(base, quickSpec());

    auto differs = [&](auto mutate) {
        RunSpec other = base;
        mutate(other);
        return other != base;
    };
    EXPECT_TRUE(differs([](RunSpec &s) { s.workload = "cc-kron"; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.footprintBytes *= 2; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.pageSize = PageSize::Size2M; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.mode = WorkloadMode::Exec; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.warmupRefs += 1; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.measureRefs += 1; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.seed += 1; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.scheme = "hashed"; }));
    EXPECT_TRUE(differs([](RunSpec &s) { s.platformTag = "stlb4096"; }));
}

TEST(RunSpec, HashAndCacheKeySeparateDistinctSpecs)
{
    const RunSpec base = quickSpec();
    std::vector<RunSpec> variants{base};
    for (auto mutate : std::initializer_list<void (*)(RunSpec &)>{
             [](RunSpec &s) { s.workload = "cc-kron"; },
             [](RunSpec &s) { s.footprintBytes *= 2; },
             [](RunSpec &s) { s.pageSize = PageSize::Size1G; },
             [](RunSpec &s) { s.mode = WorkloadMode::Exec; },
             [](RunSpec &s) { s.warmupRefs += 1; },
             [](RunSpec &s) { s.measureRefs += 1; },
             [](RunSpec &s) { s.seed = 99; },
             [](RunSpec &s) { s.scheme = "cache_tlb"; },
             [](RunSpec &s) { s.platformTag = "pscoff"; }}) {
        RunSpec other = base;
        mutate(other);
        variants.push_back(other);
    }
    for (std::size_t i = 0; i < variants.size(); ++i) {
        for (std::size_t j = i + 1; j < variants.size(); ++j) {
            EXPECT_NE(variants[i].hash(), variants[j].hash())
                << variants[i].describe() << " vs "
                << variants[j].describe();
            EXPECT_NE(variants[i].cacheKey(), variants[j].cacheKey());
        }
    }

    // Equal specs hash equal, and the hash is process-stable (FNV-1a
    // over the field bytes), so on-disk artifacts can rely on it.
    EXPECT_EQ(base.hash(), quickSpec().hash());
    EXPECT_EQ(RunSpecHash{}(base), static_cast<std::size_t>(base.hash()));
}

TEST(RunSpec, CacheKeyFormatIsStable)
{
    // The key format is load-bearing: the "v4_" prefix is the result-
    // semantics version (bumped only when identical knobs produce
    // different results, retiring stale cache files; v3 = the
    // translation-scheme seam, v4 = the shared-hierarchy multi-core
    // fields), the optional suffixes appear only for non-default knobs,
    // and default-knob keys must not drift or every cache is silently
    // invalidated.
    RunSpec spec = quickSpec();
    EXPECT_EQ(spec.cacheKey(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1");
    EXPECT_EQ(spec.cacheFileName(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1.run");
    spec.platformTag = "stlb128";
    EXPECT_EQ(spec.cacheKey(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1_pstlb128");
    spec.platformTag.clear();
    spec.fastPath = false;
    EXPECT_EQ(spec.cacheKey(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1_nofp");
    spec.fastPath = true;
    spec.scheme = "no_vm";
    EXPECT_EQ(spec.cacheKey(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1_schno_vm");
    spec.scheme = "radix";
    spec.cores = 4;
    EXPECT_EQ(spec.cacheKey(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1_c4");
    spec.tenantMix = "zipfian,churn";
    EXPECT_EQ(spec.cacheKey(),
              "v4_bfs-urand_f268435456_4K_m0_w20000_n50000_s1_c4"
              "_tzipfian-churn");
}

TEST(SweepEngine, ParallelRunIsByteIdenticalToSerial)
{
    const std::vector<std::string> workloads{"pr-kron", "cc-urand"};
    const std::vector<std::uint64_t> footprints{256ull << 20, 1ull << 30};
    auto jobs = overheadSweepJobs(workloads, footprints, quickSpec());

    std::vector<RunResult> serial, parallel;
    {
        ScopedCacheDir cache("sweep_serial_cache");
        SweepOptions options;
        options.threads = 1;
        serial = SweepEngine(options).run(jobs);
    }
    {
        ScopedCacheDir cache("sweep_parallel_cache");
        SweepOptions options;
        options.threads = 4;
        SweepEngine engine(options);
        EXPECT_EQ(engine.threads(), 4);
        parallel = engine.run(jobs);
    }

    ASSERT_EQ(serial.size(), jobs.size());
    ASSERT_EQ(parallel.size(), jobs.size());
    // Every downstream consumer reads the declared-order result list, so
    // byte-compare the two serializations they derive from it.
    EXPECT_EQ(sweepBytes(serial), sweepBytes(parallel));
    EXPECT_EQ(csvBytes(serial), csvBytes(parallel));
}

TEST(SweepEngine, SingleFlightCollapsesDuplicateSpecs)
{
    ScopedCacheDir cache("");
    RunSpec spec = quickSpec("pr-kron");
    SweepOptions options;
    options.threads = 2;
    SweepEngine engine(options);
    std::vector<RunResult> results =
        engine.run(std::vector<RunSpec>{spec, spec, spec});

    ASSERT_EQ(results.size(), 3u);
    // One execution, shared by all three declared slots.
    EXPECT_EQ(engine.progress().total, 1u);
    EXPECT_EQ(engine.progress().completed, 1u);
    for (const RunResult &r : results) {
        EXPECT_EQ(r.cycles(), results[0].cycles());
        EXPECT_EQ(r.spec, spec);
    }
}

TEST(SweepEngine, PlanClassifiesCachedAndDuplicateJobs)
{
    ScopedCacheDir cache("sweep_plan_cache");
    RunSpec done = quickSpec("pr-kron");
    RunSpec fresh = quickSpec("bc-urand");

    SweepEngine engine;
    engine.run(std::vector<RunSpec>{done});

    auto entries = engine.plan(
        {SweepJob{done}, SweepJob{fresh}, SweepJob{done}});
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_TRUE(entries[0].cached);
    EXPECT_FALSE(entries[0].duplicate);
    EXPECT_FALSE(entries[1].cached);
    EXPECT_FALSE(entries[1].duplicate);
    EXPECT_TRUE(entries[2].duplicate);
}

TEST(SweepEngine, CachePrePassSkipsExecution)
{
    ScopedCacheDir cache("sweep_prepass_cache");
    RunSpec spec = quickSpec("cc-urand");

    SweepEngine first;
    std::vector<RunResult> cold = first.run(std::vector<RunSpec>{spec});
    EXPECT_EQ(first.progress().completed, 1u);
    EXPECT_EQ(first.progress().cached, 0u);

    SweepEngine second;
    std::vector<RunResult> warm = second.run(std::vector<RunSpec>{spec});
    EXPECT_EQ(second.progress().completed, 0u);
    EXPECT_EQ(second.progress().cached, 1u);
    EXPECT_EQ(sweepBytes(cold), sweepBytes(warm));
}

TEST(RunCache, WritesAreAtomicAndRoundTrip)
{
    ScopedCacheDir cache("atomic_cache");
    RunSpec spec = quickSpec("mcf-rand");
    RunResult result = runExperiment(spec);

    // The store must leave exactly the final file — no .tmp leftovers
    // (a crashed or racing job must never be visible as a truncated
    // entry; storeCachedRun writes a temp file and rename()s it in).
    std::size_t entries = 0;
    for (const auto &it :
         std::filesystem::directory_iterator(cache.path())) {
        EXPECT_EQ(it.path().extension(), ".run") << it.path();
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    EXPECT_TRUE(cachedRunExists(spec));

    RunResult reloaded;
    ASSERT_TRUE(loadCachedRun(spec, reloaded));
    EXPECT_EQ(reloaded.spec, spec);
    for (int i = 0; i < numEvents; ++i) {
        auto id = static_cast<EventId>(i);
        EXPECT_EQ(result.counters.get(id), reloaded.counters.get(id));
    }

    // A torn write (simulated: truncated file) must read as a miss, not
    // a corrupt result.
    std::filesystem::resize_file(runCachePath(spec), 10);
    RunResult torn;
    EXPECT_FALSE(loadCachedRun(spec, torn));
}

TEST(SweepFlags, ThreadsFlagParsesAndStripsArgv)
{
    unsetenv("ATSCALE_THREADS");
    EXPECT_EQ(resolveThreads(), 1);
    EXPECT_EQ(resolveThreads(7), 7);

    char prog[] = "bench";
    char flag[] = "--threads=3";
    char other[] = "positional";
    char *argv[] = {prog, flag, other, nullptr};
    int argc = 3;
    std::string error;
    EXPECT_TRUE(extractSweepFlags(argc, argv, error));
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "positional");
    EXPECT_EQ(resolveThreads(), 3);
    unsetenv("ATSCALE_THREADS");

    char bad[] = "--threads=zoo";
    char *badv[] = {prog, bad, nullptr};
    int badc = 2;
    EXPECT_FALSE(extractSweepFlags(badc, badv, error));
    EXPECT_FALSE(error.empty());
}

TEST(SweepEngine, ObservedSweepWritesPerJobAndAggregateOutputs)
{
    ScopedCacheDir cache("sweep_obs_cache");
    std::string dir = ::testing::TempDir() + "/sweep_obs_out";
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);

    RunSpec a = quickSpec("pr-kron");
    RunSpec b = quickSpec("cc-urand");

    SweepOptions options;
    options.threads = 2;
    options.obs.sampleWindow = 20'000;
    options.obs.jsonOut = dir + "/sweep.json";
    SweepEngine engine(options);
    std::vector<RunResult> results =
        engine.run(std::vector<RunSpec>{a, b});
    ASSERT_EQ(results.size(), 2u);

    // Per-job RunResult JSON and window series under forJob() names,
    // plus the declared-order aggregate at the original path.
    for (const RunSpec &spec : {a, b}) {
        std::string stem = dir + "/sweep." + spec.fileTag();
        EXPECT_TRUE(std::filesystem::exists(stem + ".json")) << stem;
        EXPECT_TRUE(std::filesystem::exists(stem + ".windows.jsonl"))
            << stem;
    }
    EXPECT_TRUE(std::filesystem::exists(dir + "/sweep.json"));
    EXPECT_EQ(engine.writtenOutputs().back(), dir + "/sweep.json");

    // Observed sweeps execute every job even with a warm cache: cached
    // entries carry no windows.
    SweepEngine{}.run(std::vector<RunSpec>{a, b}); // populates the cache
    ASSERT_TRUE(cachedRunExists(a));
    SweepEngine again(options);
    again.run(std::vector<RunSpec>{a, b});
    EXPECT_EQ(again.progress().cached, 0u);
    EXPECT_EQ(again.progress().completed, 2u);

    std::filesystem::remove_all(dir);
}

TEST(ObsOptions, ForJobDerivesPerJobOutputNames)
{
    ObsOptions options;
    options.jsonOut = "sweep.json";
    options.tracePrefix = "walks";
    ObsOptions job = options.forJob(quickSpec().fileTag());
    EXPECT_EQ(job.jsonOut, "sweep.bfs-urand_f268435456_4K_s1.json");
    EXPECT_EQ(job.tracePrefix, "walks.bfs-urand_f268435456_4K_s1");
}
