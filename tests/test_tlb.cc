/**
 * @file
 * Unit tests for the single TLB array and the two-level TLB complex.
 */

#include <gtest/gtest.h>

#include "mmu/tlb.hh"
#include "mmu/tlb_complex.hh"

using namespace atscale;

TEST(Tlb, HitReportsPageSize)
{
    Tlb tlb("t", {16, 4, ReplPolicy::Lru}, {PageSize::Size4K});
    Addr va = 0x12345678;
    tlb.insert(va, PageSize::Size4K);

    PageSize size;
    EXPECT_TRUE(tlb.lookup(va, size));
    EXPECT_EQ(size, PageSize::Size4K);
    // Anywhere in the same page hits; the next page misses.
    EXPECT_TRUE(tlb.lookup((va & ~0xfffull) | 0xabc, size));
    EXPECT_FALSE(tlb.lookup(va + pageSize4K, size));
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, MixedSizesCoexist)
{
    Tlb tlb("t", {16, 4, ReplPolicy::Lru},
            {PageSize::Size4K, PageSize::Size2M});
    tlb.insert(0x200000, PageSize::Size2M);
    tlb.insert(0x1000, PageSize::Size4K);

    PageSize size;
    ASSERT_TRUE(tlb.lookup(0x200000 + 0x54321, size));
    EXPECT_EQ(size, PageSize::Size2M);
    ASSERT_TRUE(tlb.lookup(0x1fff, size));
    EXPECT_EQ(size, PageSize::Size4K);
}

TEST(Tlb, SetIndexUsesVpnBits)
{
    // Regression test: with 128 sets, consecutive pages must land in
    // consecutive sets (the original bug packed the size tag into the
    // index bits and collapsed the array to a quarter of its sets).
    Tlb tlb("stlb", {128, 8, ReplPolicy::Lru}, {PageSize::Size4K});
    // Insert exactly capacity-many consecutive pages: all must fit.
    for (std::uint64_t p = 0; p < 1024; ++p)
        tlb.insert(p << 12, PageSize::Size4K);
    PageSize size;
    Count resident = 0;
    for (std::uint64_t p = 0; p < 1024; ++p)
        resident += tlb.lookup(p << 12, size);
    EXPECT_EQ(resident, 1024u);
}

TEST(Tlb, HoldsChecksSizes)
{
    Tlb tlb("t", {1, 4, ReplPolicy::Lru}, {PageSize::Size1G});
    EXPECT_TRUE(tlb.holds(PageSize::Size1G));
    EXPECT_FALSE(tlb.holds(PageSize::Size4K));
    EXPECT_DEATH(tlb.insert(0, PageSize::Size4K), "cannot hold");
}

class TlbComplexTest : public ::testing::Test
{
  protected:
    TlbComplex tlb;
};

TEST_F(TlbComplexTest, MissOnEmpty)
{
    TlbLookupResult r = tlb.lookup(0x1000);
    EXPECT_EQ(r.level, TlbLevel::Miss);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST_F(TlbComplexTest, InstallThenL1Hit)
{
    tlb.install(0x5000, PageSize::Size4K);
    TlbLookupResult r = tlb.lookup(0x5abc);
    EXPECT_EQ(r.level, TlbLevel::L1);
    EXPECT_EQ(r.pageSize, PageSize::Size4K);
    EXPECT_EQ(r.extraLatency, 0u);
}

TEST_F(TlbComplexTest, L2HitRefillsL1)
{
    // Fill the 64-entry 4K L1 far beyond capacity; early pages fall to L2.
    for (std::uint64_t p = 0; p < 256; ++p)
        tlb.install(p << 12, PageSize::Size4K);
    TlbLookupResult r = tlb.lookup(0x0);
    EXPECT_EQ(r.level, TlbLevel::L2);
    EXPECT_EQ(r.extraLatency, tlb.params().l2HitExtraLatency);
    // Refilled into L1 on the way back.
    TlbLookupResult again = tlb.lookup(0x0);
    EXPECT_EQ(again.level, TlbLevel::L1);
}

TEST_F(TlbComplexTest, OneGigEntriesSkipTheL2)
{
    // 4-entry 1G L1; the 5th insert evicts one, and since the L2 does
    // not hold 1G entries the evictee misses entirely.
    for (std::uint64_t p = 0; p < 5; ++p)
        tlb.install(p << 30, PageSize::Size1G);
    int resident = 0;
    for (std::uint64_t p = 0; p < 5; ++p) {
        TlbLookupResult r = tlb.lookup(p << 30);
        resident += (r.level == TlbLevel::L1);
        EXPECT_NE(r.level, TlbLevel::L2);
    }
    EXPECT_EQ(resident, 4);
}

TEST_F(TlbComplexTest, TwoMegEntriesUseTheSharedL2)
{
    for (std::uint64_t p = 0; p < 64; ++p)
        tlb.install(p << 21, PageSize::Size2M);
    // 32-entry 2M L1: half must have fallen to the shared L2.
    int l2_hits = 0;
    for (std::uint64_t p = 0; p < 64; ++p) {
        TlbLookupResult r = tlb.lookup(p << 21);
        l2_hits += (r.level == TlbLevel::L2);
    }
    EXPECT_GT(l2_hits, 0);
}

TEST_F(TlbComplexTest, StatsAndFlush)
{
    tlb.install(0x1000, PageSize::Size4K);
    tlb.lookup(0x1000);
    tlb.lookup(0x999000);
    EXPECT_EQ(tlb.lookups(), 2u);
    EXPECT_EQ(tlb.l1Hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);

    tlb.resetStats();
    EXPECT_EQ(tlb.lookups(), 0u);

    tlb.flush();
    EXPECT_EQ(tlb.lookup(0x1000).level, TlbLevel::Miss);
}

TEST_F(TlbComplexTest, DefaultGeometryMatchesTableIII)
{
    TlbParams p;
    EXPECT_EQ(p.l1_4k.sets * p.l1_4k.ways, 64u);
    EXPECT_EQ(p.l1_2m.sets * p.l1_2m.ways, 32u);
    EXPECT_EQ(p.l1_1g.sets * p.l1_1g.ways, 4u);
    EXPECT_EQ(p.l2.sets * p.l2.ways, 1024u);
}
