/**
 * @file
 * Tests for the validation subsystem: divergence comparison on
 * hand-built counter sets, report JSON shape, the native replay driver
 * (PMU-less path), and the forced-skip sweep.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "validate/divergence.hh"
#include "validate/native_driver.hh"
#include "validate/validation_sweep.hh"

using namespace atscale;

namespace
{

CounterSet
plausibleCounters(double scale)
{
    CounterSet c;
    auto n = [scale](double v) { return static_cast<Count>(v * scale); };
    c.add(EventId::InstRetired, n(2'000'000));
    c.add(EventId::CpuClkUnhalted, n(1'000'000));
    c.add(EventId::MemUopsRetiredAllLoads, n(400'000));
    c.add(EventId::MemUopsRetiredAllStores, n(100'000));
    c.add(EventId::DtlbLoadMissesMissCausesAWalk, n(8'000));
    c.add(EventId::DtlbStoreMissesMissCausesAWalk, n(2'000));
    c.add(EventId::DtlbLoadMissesWalkDuration, n(200'000));
    c.add(EventId::DtlbStoreMissesWalkDuration, n(40'000));
    c.add(EventId::PageWalkerLoadsDtlbL1, n(10'000));
    c.add(EventId::PageWalkerLoadsDtlbL2, n(12'000));
    c.add(EventId::PageWalkerLoadsDtlbL3, n(5'000));
    c.add(EventId::PageWalkerLoadsDtlbMemory, n(3'000));
    return c;
}

const ComponentDelta *
findComponent(const std::vector<ComponentDelta> &deltas,
              const std::string &name)
{
    for (const ComponentDelta &delta : deltas)
        if (delta.name == name)
            return &delta;
    return nullptr;
}

} // namespace

TEST(Divergence, IdenticalCountersAgreeEverywhere)
{
    CounterSet c = plausibleCounters(1.0);
    std::vector<ComponentDelta> deltas =
        compareCounters(c, c, validationEvents(), 0.05);
    ASSERT_FALSE(deltas.empty());
    for (const ComponentDelta &delta : deltas) {
        EXPECT_TRUE(delta.measurable) << delta.name;
        EXPECT_TRUE(delta.within) << delta.name;
        EXPECT_DOUBLE_EQ(delta.relError, 0.0) << delta.name;
    }
}

TEST(Divergence, UniformScalingPreservesRatios)
{
    // All Eq-1 components are ratios: a uniformly 3x-hotter measured
    // run must still agree on every component.
    std::vector<ComponentDelta> deltas = compareCounters(
        plausibleCounters(1.0), plausibleCounters(3.0),
        validationEvents(), 0.01);
    for (const ComponentDelta &delta : deltas)
        EXPECT_LE(delta.relError, 0.01) << delta.name;
}

TEST(Divergence, PerturbedWalkCyclesDiverge)
{
    CounterSet sim = plausibleCounters(1.0);
    CounterSet meas = plausibleCounters(1.0);
    // Hardware refutes the walk-latency assumption by 2x.
    meas.add(EventId::DtlbLoadMissesWalkDuration, 200'000);
    std::vector<ComponentDelta> deltas =
        compareCounters(sim, meas, validationEvents(), 0.10);
    const ComponentDelta *wcpi = findComponent(deltas, "wcpi");
    ASSERT_NE(wcpi, nullptr);
    EXPECT_TRUE(wcpi->measurable);
    EXPECT_FALSE(wcpi->within);
    EXPECT_GT(wcpi->relError, 0.4);
    // The access mix was untouched: that component still agrees.
    const ComponentDelta *acc = findComponent(deltas, "accesses_per_instr");
    ASSERT_NE(acc, nullptr);
    EXPECT_TRUE(acc->within);
}

TEST(Divergence, MissingEventsMakeComponentsUnmeasurable)
{
    CounterSet c = plausibleCounters(1.0);
    // Only cycles + instructions opened: IPC is measurable, the
    // walk-based components are not — and unmeasurable never counts as
    // divergence.
    std::vector<ComponentDelta> deltas = compareCounters(
        c, c, {EventId::CpuClkUnhalted, EventId::InstRetired}, 0.05);
    const ComponentDelta *ipc = findComponent(deltas, "ipc");
    ASSERT_NE(ipc, nullptr);
    EXPECT_TRUE(ipc->measurable);
    const ComponentDelta *wcpi = findComponent(deltas, "wcpi");
    ASSERT_NE(wcpi, nullptr);
    EXPECT_FALSE(wcpi->measurable);
    EXPECT_FALSE(wcpi->within);
}

TEST(Divergence, FinalizeAggregatesWorstErrorAndAgreement)
{
    DivergenceReport report;
    report.status = "ok";
    report.tolerance = 0.10;
    ValidationPoint good;
    good.workload = "a";
    good.components = compareCounters(plausibleCounters(1.0),
                                      plausibleCounters(1.0),
                                      validationEvents(), 0.10);
    ValidationPoint bad;
    bad.workload = "b";
    CounterSet meas = plausibleCounters(1.0);
    meas.add(EventId::DtlbLoadMissesWalkDuration, 200'000);
    bad.components = compareCounters(plausibleCounters(1.0), meas,
                                     validationEvents(), 0.10);
    report.points.push_back(good);
    report.points.push_back(bad);
    finalizeReport(report);

    EXPECT_TRUE(report.points[0].agrees);
    EXPECT_FALSE(report.points[1].agrees);
    EXPECT_FALSE(report.allAgree());
    ASSERT_FALSE(report.maxRelError.empty());
    // Sorted descending: the worst component leads.
    for (std::size_t i = 1; i < report.maxRelError.size(); ++i)
        EXPECT_GE(report.maxRelError[i - 1].second,
                  report.maxRelError[i].second);
    EXPECT_GT(report.maxRelError.front().second, 0.1);
}

TEST(Divergence, JsonCarriesMachineReadableStatus)
{
    DivergenceReport report;
    report.status = "skipped_no_pmu";
    report.reason = "no PMU in this environment";
    finalizeReport(report);
    std::ostringstream os;
    writeDivergenceJson(report, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"status\": \"skipped_no_pmu\""),
              std::string::npos);
    EXPECT_NE(json.find("\"schema\": \"atscale-validation-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"reason\""), std::string::npos);
}

TEST(Divergence, OkReportJsonCarriesPointsAndCounters)
{
    DivergenceReport report;
    report.status = "ok";
    report.tolerance = 0.5;
    ValidationPoint point;
    point.workload = "mcf-rand";
    point.footprintBytes = 64ull << 20;
    point.simulated = plausibleCounters(1.0);
    point.measured = plausibleCounters(1.0);
    point.components = compareCounters(point.simulated, point.measured,
                                       validationEvents(), 0.5);
    report.points.push_back(point);
    finalizeReport(report);
    std::ostringstream os;
    writeDivergenceJson(report, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"workload\": \"mcf-rand\""), std::string::npos);
    EXPECT_NE(json.find("\"simulated_counters\""), std::string::npos);
    EXPECT_NE(json.find("\"measured_counters\""), std::string::npos);
    EXPECT_NE(json.find("\"max_rel_error\""), std::string::npos);
    EXPECT_NE(json.find("\"all_agree\": true"), std::string::npos);
}

TEST(NativeDriver, ReplaysWithoutPmu)
{
    // No events opened: the replay must still run (counter-less CI) and
    // report an honest measured=false.
    NativeRunOptions options;
    options.workload = "mcf-rand";
    options.footprintBytes = 8ull << 20;
    options.warmupRefs = 20'000;
    options.measureRefs = 50'000;
    LinuxPerfBackend backend;
    backend.close();
    NativeRunResult result = runNativeWorkload(options, backend);
    EXPECT_FALSE(result.measured);
    EXPECT_EQ(result.refsReplayed, options.measureRefs);
    EXPECT_GT(result.hostBytesMapped, 0u);
    EXPECT_GT(result.distinctPages, 0u);
    EXPECT_FALSE(result.truncated);
    EXPECT_NE(result.checksum, 0u);
}

TEST(NativeDriver, HostCapTruncatesDeterministically)
{
    NativeRunOptions options;
    options.workload = "cc-urand";
    options.footprintBytes = 16ull << 20;
    options.warmupRefs = 10'000;
    options.measureRefs = 30'000;
    options.maxHostBytes = 64ull << 10; // 16 slots: force recycling
    LinuxPerfBackend backend;
    backend.close();
    NativeRunResult result = runNativeWorkload(options, backend);
    EXPECT_TRUE(result.truncated);
    EXPECT_LE(result.hostBytesMapped, options.maxHostBytes);
    EXPECT_GT(result.distinctPages,
              result.hostBytesMapped / pageBytes(PageSize::Size4K));
}

TEST(ValidationSweep, ForcedSkipProducesDiagnosableReport)
{
    ValidationOptions options;
    options.forceNoPmu = true;
    DivergenceReport report = runValidationSweep(options);
    EXPECT_EQ(report.status, "skipped_no_pmu");
    EXPECT_FALSE(report.reason.empty());
    EXPECT_TRUE(report.points.empty());
    EXPECT_TRUE(report.allAgree());
}

TEST(ValidationSweep, EventListCoversEq1Vocabulary)
{
    std::vector<EventId> events = validationEvents();
    auto contains = [&](EventId id) {
        for (EventId e : events)
            if (e == id)
                return true;
        return false;
    };
    EXPECT_TRUE(contains(EventId::CpuClkUnhalted));
    EXPECT_TRUE(contains(EventId::InstRetired));
    EXPECT_TRUE(contains(EventId::DtlbLoadMissesWalkDuration));
    EXPECT_TRUE(contains(EventId::PageWalkerLoadsDtlbMemory));
    EXPECT_TRUE(contains(EventId::MemUopsRetiredAllStores));
}
