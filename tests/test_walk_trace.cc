/**
 * @file
 * Unit tests for the per-walk tracer: outcome classification, ring
 * wraparound, JSONL round-trips, the Chrome trace export, and
 * end-to-end determinism of traced runs.
 */

#include <cmath>
#include <sstream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "obs/session.hh"
#include "obs/walk_trace.hh"

using namespace atscale;

namespace
{

WalkTrace
sampleTrace(std::uint64_t i)
{
    WalkTrace trace;
    trace.vaddr = 0x7f0000000000ull + i * 4096;
    trace.startCycle = 100 * i;
    trace.cycles = 35 + i;
    trace.startLevel = static_cast<std::int8_t>(i % 4);
    trace.hitLevel = {0, 1, walkLevelNotVisited, 3};
    trace.outcome = static_cast<WalkOutcome>(i % 4);
    trace.isStore = (i % 2) == 1;
    return trace;
}

} // namespace

TEST(ClassifyWalk, OutcomeLabelsAgreeWithWalkResultFlags)
{
    WalkResult walk;

    // Budget-killed walk: aborted, whatever the retired flag says.
    walk.completed = false;
    EXPECT_EQ(classifyWalk(walk, false), WalkOutcome::Aborted);
    EXPECT_EQ(classifyWalk(walk, true), WalkOutcome::Aborted);

    // Completed at a not-present entry: faulted.
    walk.completed = true;
    walk.faulted = true;
    EXPECT_EQ(classifyWalk(walk, false), WalkOutcome::Faulted);

    // Completed with a present leaf: retired vs wrong-path.
    walk.faulted = false;
    EXPECT_EQ(classifyWalk(walk, true), WalkOutcome::Completed);
    EXPECT_EQ(classifyWalk(walk, false), WalkOutcome::WrongPath);
}

TEST(WalkOutcomeNames, RoundTrip)
{
    for (WalkOutcome outcome :
         {WalkOutcome::Completed, WalkOutcome::Faulted, WalkOutcome::Aborted,
          WalkOutcome::WrongPath}) {
        auto back = walkOutcomeFromName(walkOutcomeName(outcome));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, outcome);
    }
    EXPECT_FALSE(walkOutcomeFromName("bogus").has_value());
}

TEST(WalkTracer, FillsWithoutWraparound)
{
    WalkTracer tracer(8);
    for (std::uint64_t i = 0; i < 5; ++i)
        tracer.record(sampleTrace(i));
    EXPECT_EQ(tracer.size(), 5u);
    EXPECT_EQ(tracer.recorded(), 5u);
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_EQ(tracer.firstSeq(), 0u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(tracer.at(i), sampleTrace(i));
}

TEST(WalkTracer, WraparoundKeepsNewestOldestFirst)
{
    WalkTracer tracer(4);
    for (std::uint64_t i = 0; i < 11; ++i)
        tracer.record(sampleTrace(i));
    EXPECT_EQ(tracer.size(), 4u);
    EXPECT_EQ(tracer.recorded(), 11u);
    EXPECT_EQ(tracer.dropped(), 7u);
    EXPECT_EQ(tracer.firstSeq(), 7u);
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(tracer.at(i), sampleTrace(7 + i));
}

TEST(WalkTracer, ClearForgetsEverything)
{
    WalkTracer tracer(4);
    tracer.record(sampleTrace(0));
    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_EQ(tracer.recorded(), 0u);
    tracer.record(sampleTrace(3));
    EXPECT_EQ(tracer.at(0), sampleTrace(3));
}

TEST(WalkTraceJsonl, RoundTripsEveryField)
{
    for (std::uint64_t i = 0; i < 4; ++i) {
        WalkTrace trace = sampleTrace(i);
        std::string line = walkTraceToJsonl(trace, i);
        auto parsed = walkTraceFromJsonl(line);
        ASSERT_TRUE(parsed.has_value()) << line;
        EXPECT_EQ(*parsed, trace) << line;
    }
}

TEST(WalkTraceJsonl, RejectsMalformedLines)
{
    EXPECT_FALSE(walkTraceFromJsonl("").has_value());
    EXPECT_FALSE(walkTraceFromJsonl("not json").has_value());
    EXPECT_FALSE(walkTraceFromJsonl("{\"seq\":0}").has_value());
}

TEST(WalkTraceJsonl, OutcomeLabelsAreTheTableViNames)
{
    WalkTrace trace;
    trace.outcome = WalkOutcome::WrongPath;
    EXPECT_NE(walkTraceToJsonl(trace, 0).find("\"wrong_path\""),
              std::string::npos);
    trace.outcome = WalkOutcome::Aborted;
    EXPECT_NE(walkTraceToJsonl(trace, 0).find("\"aborted\""),
              std::string::npos);
}

TEST(WalkTracer, ChromeTraceIsWellFormed)
{
    WalkTracer tracer(8);
    for (std::uint64_t i = 0; i < 3; ++i)
        tracer.record(sampleTrace(i));
    std::ostringstream os;
    tracer.exportChromeTrace(os, 2.5);
    std::string trace = os.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"displayTimeUnit\""), std::string::npos);
}

namespace
{

/** One observed run; returns (walks JSONL, windows JSONL). */
std::pair<std::string, std::string>
observedRun()
{
    ObsOptions options;
    options.sampleWindow = 50'000;
    options.tracePrefix = "unused"; // enables the tracer; no files written
    ObsSession session(options);

    RunConfig config;
    config.workload = "bfs-urand";
    config.footprintBytes = 1ull << 24;
    config.warmupRefs = 20'000;
    config.measureRefs = 60'000;
    config.seed = 7;
    runExperiment(config, {}, &session);

    std::ostringstream walks, windows;
    session.tracer()->exportJsonl(walks);
    session.sampler()->exportJsonl(windows);
    return {walks.str(), windows.str()};
}

} // namespace

TEST(ObservedRun, TracesAreDeterministic)
{
    auto [walks1, windows1] = observedRun();
    auto [walks2, windows2] = observedRun();
    EXPECT_FALSE(walks1.empty());
    EXPECT_FALSE(windows1.empty());
    EXPECT_EQ(walks1, walks2);
    EXPECT_EQ(windows1, windows2);
}

TEST(ObservedRun, MatchesUnobservedCountersExceptCycles)
{
    // Observation must not perturb the simulation: every counter except
    // the chunk-rounded cycle count is identical with and without it.
    RunConfig config;
    config.workload = "bfs-urand";
    config.footprintBytes = 1ull << 24;
    config.warmupRefs = 20'000;
    config.measureRefs = 60'000;
    config.seed = 7;

    RunResult plain = runExperiment(config);

    ObsOptions options;
    options.sampleWindow = 50'000;
    ObsSession session(options);
    RunResult observed = runExperiment(config, {}, &session);

    plain.counters.forEach([&](EventId id, const char *name, Count value) {
        if (id == EventId::CpuClkUnhalted) {
            // Chunked runs publish cycles with different fractional
            // rounding; the drift is bounded by one cycle per chunk.
            double diff = std::abs(
                static_cast<double>(observed.counters.get(id)) -
                static_cast<double>(value));
            EXPECT_LE(diff, 64.0) << name;
        } else {
            EXPECT_EQ(observed.counters.get(id), value) << name;
        }
    });
}
