/**
 * @file
 * Unit tests for the hardware page-table walker.
 */

#include <gtest/gtest.h>

#include "mem/frame_alloc.hh"
#include "mem/phys_mem.hh"
#include "mmu/walker.hh"

using namespace atscale;

class WalkerTest : public ::testing::Test
{
  protected:
    WalkerTest()
        : alloc(1ull << 34), table(mem, alloc), pscs(),
          walker(mem, hierarchy, pscs, {})
    {
    }

    PhysicalMemory mem;
    FrameAllocator alloc;
    CacheHierarchy hierarchy;
    PageTable table;
    PagingStructureCaches pscs;
    PageWalker walker;
};

TEST_F(WalkerTest, FullWalkTakesFourAccesses)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    WalkResult r = walker.walk(va, table);
    ASSERT_TRUE(r.completed);
    EXPECT_FALSE(r.faulted);
    EXPECT_EQ(r.ptwAccesses, 4u);
    EXPECT_EQ(r.startLevel, 3);
    EXPECT_TRUE(r.translation.valid);
    EXPECT_EQ(r.translation.frame, 0xabc000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST_F(WalkerTest, PscShortensSubsequentWalks)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    table.map(va + pageSize4K, 0xdef000, PageSize::Size4K);

    walker.walk(va, table); // fills the PSCs
    WalkResult r = walker.walk(va + pageSize4K, table);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.ptwAccesses, 1u); // PDE cache hit: only the PTE load
    EXPECT_EQ(r.startLevel, 0);
}

TEST_F(WalkerTest, SuperpageWalksAreShorter)
{
    table.map(0x40000000ull, 0x80000000ull, PageSize::Size1G);
    WalkResult gig = walker.walk(0x40000000ull + 5, table);
    ASSERT_TRUE(gig.completed);
    EXPECT_EQ(gig.ptwAccesses, 2u); // PML4E + PDPTE(leaf)
    EXPECT_EQ(gig.translation.pageSize, PageSize::Size1G);

    table.map(0x80200000ull, 0x10200000ull, PageSize::Size2M);
    pscs.flush();
    WalkResult two = walker.walk(0x80200000ull, table);
    ASSERT_TRUE(two.completed);
    EXPECT_EQ(two.ptwAccesses, 3u); // PML4E + PDPTE + PDE(leaf)
    EXPECT_EQ(two.translation.pageSize, PageSize::Size2M);
}

TEST_F(WalkerTest, NonPresentTerminatesAsFault)
{
    // Nothing mapped: the root entry is not present.
    WalkResult r = walker.walk(0x1234000, table);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.faulted);
    EXPECT_FALSE(r.translation.valid);
    EXPECT_EQ(r.ptwAccesses, 1u);
}

TEST_F(WalkerTest, PartiallyPresentPathFaultsDeeper)
{
    table.map(0x1000, 0x2000, PageSize::Size4K);
    // Same PT node exists; sibling entry not present -> 4 accesses then
    // fault at the leaf.
    pscs.flush();
    WalkResult r = walker.walk(0x3000, table);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.faulted);
    EXPECT_EQ(r.ptwAccesses, 4u);
}

TEST_F(WalkerTest, BudgetAbortsWalk)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    WalkResult r = walker.walk(va, table, /*budget=*/10);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.cycles, 10u);
    EXPECT_EQ(walker.walksAborted(), 1u);
    EXPECT_EQ(walker.walksCompleted(), 0u);
    // A later unconstrained walk still succeeds.
    WalkResult full = walker.walk(va, table);
    EXPECT_TRUE(full.completed);
}

TEST_F(WalkerTest, ZeroBudgetAbortsBeforeAnyAccess)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    WalkResult r = walker.walk(va, table, 0);
    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.ptwAccesses, 0u);
}

TEST_F(WalkerTest, LoadsAtLevelSumToAccesses)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    WalkResult r = walker.walk(va, table);
    Count total = 0;
    for (Count c : r.loadsAtLevel)
        total += c;
    EXPECT_EQ(total, r.ptwAccesses);
    // Cold caches: everything came from memory.
    EXPECT_EQ(r.loadsAtLevel[static_cast<size_t>(MemLevel::Memory)], 4u);
}

TEST_F(WalkerTest, RepeatWalksHitPteInCaches)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    walker.walk(va, table);
    pscs.flush(); // force a full-length walk with warm data caches
    WalkResult r = walker.walk(va, table);
    EXPECT_EQ(r.loadsAtLevel[static_cast<size_t>(MemLevel::L1)], 4u);
    EXPECT_LT(r.cycles, 40u);
}

TEST_F(WalkerTest, StatsAccumulateAndReset)
{
    Addr va = 0x7f0000123000ull;
    table.map(va, 0xabc000, PageSize::Size4K);
    walker.walk(va, table);
    walker.walk(va, table, 1);
    EXPECT_EQ(walker.walksInitiated(), 2u);
    EXPECT_EQ(walker.walksCompleted(), 1u);
    EXPECT_EQ(walker.walksAborted(), 1u);
    EXPECT_GT(walker.totalWalkCycles(), 0u);
    walker.resetStats();
    EXPECT_EQ(walker.walksInitiated(), 0u);
    EXPECT_EQ(walker.totalWalkCycles(), 0u);
}
