/**
 * @file
 * Tests for the workload registry and property tests over every model
 * stream: references stay inside mapped regions, streams are
 * deterministic, and wrong-path addresses are valid.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/registry.hh"

using namespace atscale;

TEST(Registry, FourteenWorkloads)
{
    auto names = workloadNames();
    EXPECT_EQ(names.size(), 14u);
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), 14u);
}

TEST(Registry, NamesRoundTripThroughFactories)
{
    for (const std::string &name : workloadNames()) {
        auto workload = createWorkload(name);
        ASSERT_NE(workload, nullptr);
        EXPECT_EQ(workload->name(), name);
        EXPECT_TRUE(workload->supports(WorkloadMode::Model)) << name;
    }
}

TEST(Registry, UnknownNameIsFatal)
{
    EXPECT_DEATH(createWorkload("quake-3"), "unknown workload");
}

TEST(Registry, CreateAllMatchesNames)
{
    auto all = createAllWorkloads();
    auto names = workloadNames();
    ASSERT_EQ(all.size(), names.size());
    for (size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i]->name(), names[i]);
}

TEST(Registry, TraitsAreSane)
{
    for (auto &workload : createAllWorkloads()) {
        WorkloadTraits t = workload->traits();
        EXPECT_GT(t.branchesPerInstr, 0.0);
        EXPECT_LT(t.branchesPerInstr, 0.5);
        EXPECT_GT(t.mispredictRate, 0.0);
        EXPECT_LT(t.mispredictRate, 0.2);
        EXPECT_GE(t.mlpHint, 0.0);
        EXPECT_LE(t.mlpHint, 1.0);
    }
}

/** Per-workload property suite. */
class WorkloadProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    static constexpr std::uint64_t footprint = 512ull << 20;
};

TEST_P(WorkloadProperty, RefsStayInsideMappedRegions)
{
    PhysicalMemory mem;
    FrameAllocator alloc(64ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);

    auto workload = createWorkload(GetParam());
    WorkloadConfig config;
    config.footprintBytes = footprint;
    auto stream = workload->instantiate(space, config);

    Ref ref;
    for (int i = 0; i < 50'000; ++i) {
        ASSERT_TRUE(stream->next(ref));
        const Vma *vma = space.findVma(ref.vaddr);
        ASSERT_NE(vma, nullptr)
            << GetParam() << " emitted out-of-region address " << std::hex
            << ref.vaddr;
    }
}

TEST_P(WorkloadProperty, WrongPathAddrsAreMapped)
{
    PhysicalMemory mem;
    FrameAllocator alloc(64ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);

    auto workload = createWorkload(GetParam());
    WorkloadConfig config;
    config.footprintBytes = footprint;
    auto stream = workload->instantiate(space, config);

    Rng rng(77);
    for (int i = 0; i < 5'000; ++i) {
        Addr addr = stream->wrongPathAddr(rng);
        EXPECT_NE(space.findVma(addr), nullptr) << GetParam();
    }
}

TEST_P(WorkloadProperty, StreamsAreDeterministic)
{
    auto make_refs = [&](std::uint64_t seed) {
        PhysicalMemory mem;
        FrameAllocator alloc(64ull << 30);
        AddressSpace space(mem, alloc, PageSize::Size4K);
        auto workload = createWorkload(GetParam());
        WorkloadConfig config;
        config.footprintBytes = footprint;
        config.seed = seed;
        auto stream = workload->instantiate(space, config);
        std::vector<Addr> addrs;
        Ref ref;
        for (int i = 0; i < 5'000; ++i) {
            stream->next(ref);
            addrs.push_back(ref.vaddr);
        }
        return addrs;
    };
    EXPECT_EQ(make_refs(1), make_refs(1));
    EXPECT_NE(make_refs(1), make_refs(2));
}

TEST_P(WorkloadProperty, MixContainsLoadsStoresAndGaps)
{
    PhysicalMemory mem;
    FrameAllocator alloc(64ull << 30);
    AddressSpace space(mem, alloc, PageSize::Size4K);
    auto workload = createWorkload(GetParam());
    WorkloadConfig config;
    config.footprintBytes = footprint;
    auto stream = workload->instantiate(space, config);

    Count stores = 0, gaps = 0;
    Ref ref;
    for (int i = 0; i < 50'000; ++i) {
        stream->next(ref);
        stores += ref.isStore;
        gaps += ref.instGap;
    }
    // tc reads the CSR only; every other program writes its results.
    if (GetParam().substr(0, 3) != "tc-") {
        EXPECT_GT(stores, 0u) << GetParam();
    }
    EXPECT_LT(stores, 40'000u) << GetParam();
    // Real instruction mixes have non-memory instructions.
    EXPECT_GT(gaps, 50'000u) << GetParam();
}

TEST_P(WorkloadProperty, FootprintScalesRegionSizes)
{
    auto reserved_at = [&](std::uint64_t footprint_bytes) {
        PhysicalMemory mem;
        FrameAllocator alloc(64ull << 30);
        AddressSpace space(mem, alloc, PageSize::Size4K);
        auto workload = createWorkload(GetParam());
        WorkloadConfig config;
        config.footprintBytes = footprint_bytes;
        workload->instantiate(space, config);
        return space.reservedBytes();
    };
    std::uint64_t small = reserved_at(256ull << 20);
    std::uint64_t large = reserved_at(4ull << 30);
    // Reserved bytes should be within 2x of the requested footprint and
    // scale with it.
    EXPECT_GT(small, 128ull << 20);
    EXPECT_LT(small, 512ull << 20);
    EXPECT_GT(large, 6 * small);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadProperty,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &suite_info) {
                             std::string name = suite_info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });
