#!/usr/bin/env python3
"""Record the repo's benchmark numbers as one machine-readable file.

Runs the google-benchmark micro suites (bench_micro_mmu,
bench_micro_cache) in --quick mode plus cold-cache quick-sweep wall
timings of the fig01 bench (default lane setting and --no-lanes), and
writes them as a flat JSON object:

    { "<bench name>": {"ns_per_op": <float>},   # micro benches
      "<timing name>": {"wall_s": <float>},     # whole-sweep timings
      "scheme_<name>": {"cpi": <float>,         # per-scheme means from
                        "wcpi": <float>},       #   bench_scheme_compare
      "multicore_<point>": {"cpi": <float>,     # per-point aggregates
                            "wcpi": <float>,    #   from bench_multicore
                            "shootdowns": <int>},
      "validate_status": {"status": <str>},     # divergence report
      "validate_max_rel_err_<comp>": {"rel_err": <float>} }

The validate_* entries summarize the hardware-validation divergence
report (tools/validate, docs/VALIDATION.md): the report status plus the
worst per-component relative error between measured and simulated WCPI
decompositions. On counter-less hosts only the status entry appears
("skipped_no_pmu"), so the comparison gate naturally skips the error
metrics there.

The scheme_* entries record the mean CPI and Eq-1 WCPI per translation
scheme (radix, hashed, cache_tlb, no_vm) from a quick
bench_scheme_compare sweep — simulated model outputs, not host timings,
so they are exactly reproducible and any drift flags a behavioural
change in a scheme backend rather than runner noise.

The multicore_* entries do the same for the shared-hierarchy sweep
(bench_multicore): per (cores, page size, scheme) point the aggregate
CPI/WCPI and the number of remap-triggered TLB shootdowns — also pure
simulation outputs, so drift means the multi-core interleave or the
shootdown cost model changed behaviour.

The fig01 wall timings additionally cover the reference-stream
record/replay store: the `_record` row runs the cold sweep while
recording every model-mode stream to disk, the `_replay` row reruns it
replaying those recordings (docs/PERF.md section 8).

The checked-in baseline lives at BENCH_10.json in the repo root; CI
regenerates the file on every run, uploads it as an artifact, and
--compare soft-warns (exit code stays 0) when a bench regresses more
than --tolerance (default 15%) against the baseline. The warning is
deliberately soft: micro-benchmark numbers move with the host, and the
baseline was recorded on a different machine than CI's runners — the
artifact trail, not the gate, is the product here. One same-host gap
is also soft-checked without a baseline: `--lanes` must not be slower
than `--no-lanes` by more than the tolerance (the lane executor's
recorded cost/benefit, docs/PERF.md section 7).

Usage:
    tools/bench/record_bench.py --build-dir build --out BENCH_10.json
    tools/bench/record_bench.py --build-dir build \
        --out bench_out/BENCH_10.json --compare BENCH_10.json
"""

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time

MICRO_BENCHES = ["bench_micro_mmu", "bench_micro_cache"]
FIG01 = "bench_fig01_overhead_vs_footprint"
SCHEME_COMPARE = "bench_scheme_compare"
MULTICORE = "bench_multicore"

# Ambient engine overrides would silently change what a timing records.
ENGINE_KNOBS = ("ATSCALE_LANES", "ATSCALE_NO_LANES", "ATSCALE_THREADS",
                "ATSCALE_NO_FASTPATH", "ATSCALE_SCHEME", "ATSCALE_SHARD",
                "ATSCALE_STREAM_DIR", "ATSCALE_NO_BATCH")

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_micro(build_dir, results):
    """One gbench binary -> {name: {ns_per_op}} entries."""
    for bench in MICRO_BENCHES:
        binary = os.path.join(build_dir, "bench", bench)
        proc = subprocess.run(
            [binary, "--quick", "--benchmark_format=json"],
            capture_output=True, text=True, check=True)
        report = json.loads(proc.stdout)
        for entry in report["benchmarks"]:
            scale = TIME_UNIT_NS[entry["time_unit"]]
            results[entry["name"]] = {
                "ns_per_op": round(entry["real_time"] * scale, 3)}
        print("ran %s (%d benchmarks)" % (bench,
                                          len(report["benchmarks"])))


def time_fig01(build_dir, name, extra_args, results):
    """One cold-cache quick fig01 sweep -> {name: {wall_s}}.

    Cold is guaranteed by pointing ATSCALE_CACHE_DIR at a fresh temp
    dir; outputs land there too so repeated runs never collide.
    """
    binary = os.path.abspath(os.path.join(build_dir, "bench", FIG01))
    scratch = tempfile.mkdtemp(prefix="record_bench_")
    env = dict(os.environ)
    for knob in ENGINE_KNOBS:
        env.pop(knob, None)
    env["ATSCALE_QUICK"] = "1"
    env["ATSCALE_CACHE_DIR"] = os.path.join(scratch, "cache")
    env["ATSCALE_OUT_DIR"] = scratch
    os.makedirs(env["ATSCALE_CACHE_DIR"])
    try:
        start = time.monotonic()
        subprocess.run([binary, "--threads=1", *extra_args], cwd=scratch,
                       env=env, stdout=subprocess.DEVNULL,
                       stderr=subprocess.DEVNULL, check=True)
        wall = time.monotonic() - start
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    results[name] = {"wall_s": round(wall, 2)}
    print("timed %s: %.2fs" % (name, wall))


def time_fig01_replay(build_dir, results):
    """Record/replay cost-benefit -> two {*: {wall_s}} rows.

    First leg runs the cold quick fig01 sweep with --record-streams
    pointed at a scratch stream store (the recording tax is the delta
    against fig01_quick_cold_threads1); the second leg wipes the run
    cache but keeps the stream store, so every model-mode stream
    replays from disk (the replay win, same comparison).
    """
    binary = os.path.abspath(os.path.join(build_dir, "bench", FIG01))
    scratch = tempfile.mkdtemp(prefix="record_bench_replay_")
    env = dict(os.environ)
    for knob in ENGINE_KNOBS:
        env.pop(knob, None)
    env["ATSCALE_QUICK"] = "1"
    env["ATSCALE_OUT_DIR"] = scratch
    streams = os.path.join(scratch, "streams")
    try:
        for leg, name in (("record", "fig01_quick_cold_threads1_record"),
                          ("replay", "fig01_quick_cold_threads1_replay")):
            # Fresh run cache per leg: both legs simulate every job; only
            # the stream store persists between them.
            env["ATSCALE_CACHE_DIR"] = os.path.join(scratch, "cache_" + leg)
            os.makedirs(env["ATSCALE_CACHE_DIR"])
            start = time.monotonic()
            subprocess.run(
                [binary, "--threads=1", "--record-streams=%s" % streams],
                cwd=scratch, env=env, stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL, check=True)
            wall = time.monotonic() - start
            results[name] = {"wall_s": round(wall, 2)}
            print("timed %s: %.2fs" % (name, wall))
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def record_scheme_compare(build_dir, results):
    """Quick scheme sweep -> one {scheme_<name>: {cpi, wcpi}} row per
    translation scheme.

    Parses the `[scheme-summary] <scheme> cpi=<v> wcpi=<v>` lines that
    bench_scheme_compare prints for exactly this purpose. The numbers
    are simulated-model means (deterministic for a given tree), so the
    --compare gate turns into a cheap behavioural-drift alarm for the
    scheme backends. Runs against a fresh cache, with lane grouping
    forced on so the lockstep path is the one recorded.
    """
    binary = os.path.abspath(os.path.join(build_dir, "bench",
                                          SCHEME_COMPARE))
    if not os.path.exists(binary):
        print("skipping scheme record: %s not built" % binary)
        return
    scratch = tempfile.mkdtemp(prefix="record_scheme_")
    env = dict(os.environ)
    for knob in ENGINE_KNOBS:
        env.pop(knob, None)
    env["ATSCALE_QUICK"] = "1"
    env["ATSCALE_LANES"] = "1"
    env["ATSCALE_CACHE_DIR"] = os.path.join(scratch, "cache")
    env["ATSCALE_OUT_DIR"] = scratch
    os.makedirs(env["ATSCALE_CACHE_DIR"])
    try:
        proc = subprocess.run([binary, "--threads=1"], cwd=scratch,
                              env=env, capture_output=True, text=True,
                              check=True)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    rows = 0
    for line in proc.stdout.splitlines():
        if not line.startswith("[scheme-summary]"):
            continue
        _, scheme, cpi_kv, wcpi_kv = line.split()
        results["scheme_%s" % scheme] = {
            "cpi": float(cpi_kv.split("=", 1)[1]),
            "wcpi": float(wcpi_kv.split("=", 1)[1])}
        rows += 1
    if rows == 0:
        raise RuntimeError(
            "bench_scheme_compare printed no [scheme-summary] lines")
    print("recorded scheme compare: %d scheme(s)" % rows)


def record_multicore(build_dir, results):
    """Quick shared-hierarchy sweep -> one {multicore_<point>: {cpi,
    wcpi, shootdowns}} row per (cores, page size, scheme) point.

    Parses the `[multicore-summary] <point> cpi=<v> wcpi=<v>
    shootdowns=<n>` lines that bench_multicore prints for exactly this
    purpose. Deterministic simulation outputs: drift flags a change in
    the multi-core interleave or the shootdown cost model.
    """
    binary = os.path.abspath(os.path.join(build_dir, "bench", MULTICORE))
    if not os.path.exists(binary):
        print("skipping multicore record: %s not built" % binary)
        return
    scratch = tempfile.mkdtemp(prefix="record_multicore_")
    env = dict(os.environ)
    for knob in ENGINE_KNOBS:
        env.pop(knob, None)
    env["ATSCALE_QUICK"] = "1"
    env["ATSCALE_CACHE_DIR"] = os.path.join(scratch, "cache")
    env["ATSCALE_OUT_DIR"] = scratch
    os.makedirs(env["ATSCALE_CACHE_DIR"])
    try:
        proc = subprocess.run([binary, "--threads=1"], cwd=scratch,
                              env=env, capture_output=True, text=True,
                              check=True)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    rows = 0
    for line in proc.stdout.splitlines():
        if not line.startswith("[multicore-summary]"):
            continue
        _, point, cpi_kv, wcpi_kv, sd_kv = line.split()
        results["multicore_%s" % point] = {
            "cpi": float(cpi_kv.split("=", 1)[1]),
            "wcpi": float(wcpi_kv.split("=", 1)[1]),
            "shootdowns": int(sd_kv.split("=", 1)[1])}
        rows += 1
    if rows == 0:
        raise RuntimeError(
            "bench_multicore printed no [multicore-summary] lines")
    print("recorded multicore sweep: %d point(s)" % rows)


def record_validation(build_dir, results):
    """Quick validation run -> status + max relative error per component.

    Degrades with the harness: a missing binary records nothing, a
    counter-less host records only the skip status. Runs against a
    fresh cache so the recorded divergence is always freshly measured.
    """
    binary = os.path.abspath(
        os.path.join(build_dir, "tools", "validate", "validate_harness"))
    if not os.path.exists(binary):
        print("skipping validation record: %s not built" % binary)
        return
    scratch = tempfile.mkdtemp(prefix="record_validate_")
    report_path = os.path.join(scratch, "divergence_report.json")
    env = dict(os.environ)
    env["ATSCALE_CACHE_DIR"] = os.path.join(scratch, "cache")
    os.makedirs(env["ATSCALE_CACHE_DIR"])
    try:
        proc = subprocess.run(
            [binary, "--quick", "--report=%s" % report_path],
            cwd=scratch, env=env, stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL)
        if proc.returncode != 0:
            print("skipping validation record: harness exited %d"
                  % proc.returncode)
            return
        with open(report_path) as fh:
            report = json.load(fh)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    results["validate_status"] = {"status": report.get("status", "unknown")}
    for component, rel_err in report.get("max_rel_error", {}).items():
        results["validate_max_rel_err_%s" % component] = {
            "rel_err": round(rel_err, 4)}
    print("recorded validation: status=%s, %d component(s)"
          % (report.get("status"), len(report.get("max_rel_error", {}))))


def metric(entry):
    for key in ("ns_per_op", "wall_s", "cpi", "rel_err"):
        if key in entry:
            return key, entry[key]
    return None, None


def compare(results, baseline_path, tolerance):
    """Soft regression check; returns the number of warnings."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    warnings = 0
    for name, entry in sorted(results.items()):
        key, new = metric(entry)
        base_entry = baseline.get(name)
        if key is None or not isinstance(base_entry, dict):
            continue
        old = base_entry.get(key)
        if not old:
            continue
        ratio = new / old
        if ratio > 1.0 + tolerance:
            warnings += 1
            print("WARNING: %s regressed %.0f%% (%s %.3f -> %.3f)"
                  % (name, (ratio - 1.0) * 100, key, old, new))
    if warnings:
        print("%d bench(es) regressed > %.0f%% vs %s (soft warning)"
              % (warnings, tolerance * 100, baseline_path))
    else:
        print("no regressions > %.0f%% vs %s"
              % (tolerance * 100, baseline_path))
    return warnings


def check_lane_gap(results, tolerance):
    """Soft same-host gate: --lanes must not lose to --no-lanes.

    Both rows come from this very run, so unlike the baseline compare
    there is no cross-host noise to excuse a gap: a warning here means
    the lane executor itself costs more than it amortizes on this host.
    Soft (returns the warning count, exit stays 0) because single-core
    runners legitimately sit at the break-even point.
    """
    lanes = results.get("fig01_quick_cold_threads1_lanes", {}).get("wall_s")
    nolanes = results.get(
        "fig01_quick_cold_threads1_nolanes", {}).get("wall_s")
    if not lanes or not nolanes:
        return 0
    ratio = lanes / nolanes
    if ratio > 1.0 + tolerance:
        print("WARNING: --lanes slower than --no-lanes by %.0f%% "
              "(%.2fs vs %.2fs) on this host (soft warning)"
              % ((ratio - 1.0) * 100, lanes, nolanes))
        return 1
    print("lane gap ok: --lanes %.2fs vs --no-lanes %.2fs (%+.0f%%)"
          % (lanes, nolanes, (ratio - 1.0) * 100))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="record micro-bench and sweep timings as JSON")
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_10.json")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="soft-warn against this baseline file")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="relative regression threshold "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--skip-sweeps", action="store_true",
                        help="micro benches only (fast smoke of the "
                             "harness itself)")
    args = parser.parse_args()

    results = {}
    run_micro(args.build_dir, results)
    if not args.skip_sweeps:
        # Default lane setting first (what a user gets), then both
        # forced settings — the trio is the lockstep executor's recorded
        # cost/benefit on this host (docs/PERF.md section on lanes).
        time_fig01(args.build_dir, "fig01_quick_cold_threads1", [],
                   results)
        time_fig01(args.build_dir, "fig01_quick_cold_threads1_lanes",
                   ["--lanes"], results)
        time_fig01(args.build_dir, "fig01_quick_cold_threads1_nolanes",
                   ["--no-lanes"], results)
        time_fig01_replay(args.build_dir, results)
        record_scheme_compare(args.build_dir, results)
        record_multicore(args.build_dir, results)
        record_validation(args.build_dir, results)

    out_dir = os.path.dirname(os.path.abspath(args.out))
    os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s (%d entries)" % (args.out, len(results)))

    check_lane_gap(results, args.tolerance)
    if args.compare:
        compare(results, args.compare, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
