#!/usr/bin/env python3
"""atscale-lint: repo-specific invariant checks for the atscale tree.

The repo's correctness story rests on invariants no off-the-shelf tool
knows about: bitwise determinism of every run (serial == parallel sweep
output, fastpath-on == fastpath-off counters, golden files), and the
exactness contract around performance counters (docs/PERF.md). This tool
enforces the statically checkable parts of those invariants:

  R1  no wall-clock / ambient-randomness calls in src/ — every stochastic
      or time-like quantity must derive from the seeded Rng / the
      simulated clock, or results stop being a pure function of RunSpec.
  R2  no iteration over std::unordered_map / std::unordered_set —
      iteration order is implementation- and run-dependent, so anything
      it feeds (output, stats, even victim selection) goes
      nondeterministic. Iterate a sorted/declared-order container
      instead.
  R3  every `Count ..._` counter member of a stats-bearing class (one
      declaring registerStats() or resetStats()) must be registered with
      StatsRegistry — a counter that exists but never reaches the
      registry silently breaks the "every counter-producing path is
      observable" completeness contract.
  R4  MmuResult's walk fields are deliberately left unwritten on TLB
      hits (see mmu/mmu.hh); reads must sit in a branch that established
      tlbLevel == TlbLevel::Miss.
  R5  no raw std::mutex (or friends) outside util/thread_annotations.hh
      — cross-thread state must use the annotated atscale::Mutex so
      clang's -Wthread-safety can prove the locking discipline.
  R6  no mutable static state in src/cpu or src/mmu — the lockstep lane
      executor (core/lane_exec.hh) interleaves many Core/Mmu instances
      in one thread and the sweep engine runs groups concurrently, so a
      static that carries per-run state couples lanes and breaks the
      lane exactness contract. Static member functions and
      static constexpr tables are fine; per-run state must be an
      instance member.
  R7  every EventId enum member must appear in the perf backend's
      encodings[] table and be covered by the pretty-name map (the
      names array sized by numEvents) — an event missing from the
      encodings table silently reads as zero on real hardware, and a
      short name table turns eventName() into a panic. Cross-file, like
      R3: the enum, the table, and the map live in different files.
  R8  every TranslationScheme subclass must be constructible through the
      scheme registry (mmu/scheme/registry.cc) and must declare
      registerStats — a scheme outside the registry can never be
      selected by a sweep (dead modelling code), and one without
      registerStats is invisible to the observability layer, breaking
      the "all schemes alike" contract of docs/TRANSLATION_SCHEMES.md.
      Cross-file, like R7: the subclass and the factory live apart.
  R9  every class marked ATSCALE_SHARED_ACROSS_CORES — and every class
      holding a member of a marked type — must either guard the shared
      state with the annotated atscale::Mutex or carry a `cross-core:`
      comment documenting why lock-free access is safe (the SharedSystem
      interleave steps one core at a time on one thread,
      docs/MULTICORE.md). Cross-core structure with neither is a data
      race waiting for the first concurrent caller, and TSan can only
      catch it at runtime on a racing schedule. Cross-file, like R8:
      the marker macro and the holders live apart.

Findings can be suppressed, one line at a time, with an inline comment
on the offending line or the line directly above it:

    // atscale-lint: allow(R2 plan() output is resorted before emission)

The reason text is mandatory and is reported alongside the suppression
count, so the review burden of each escape hatch stays visible.

Engines: with the libclang python bindings installed (python3-clang),
R2/R5 use the AST for type-accurate detection; everywhere else — and
whenever libclang is missing or fails to parse — a pure-regex engine
runs, so the gate can never silently skip. Fixture tests pin
--engine=regex for determinism across environments.
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

SCAN_DIRS = ["src", "bench", "examples", "tests"]
EXTENSIONS = {".cc", ".hh", ".cpp", ".hpp", ".h"}

# The one file allowed to spell std::mutex: the annotated wrapper itself.
R5_EXEMPT = os.path.join("src", "util", "thread_annotations.hh")

RULE_SCOPES = {
    "R1": ["src"],
    "R2": ["src", "bench", "examples"],
    "R3": ["src"],
    "R4": ["src", "bench", "examples", "tests"],
    "R5": ["src", "bench", "examples", "tests"],
    "R6": ["src"],
    "R7": ["src"],
    "R8": ["src"],
    "R9": ["src"],
}

SUPPRESS_RE = re.compile(
    r"//\s*atscale-lint:\s*allow\(\s*(R[1-9])\s+([^)]+)\)")

# R1: ambient nondeterminism. Each entry: (regex, what it is).
R1_PATTERNS = [
    (re.compile(r"\bstd::chrono\b"), "std::chrono (wall/steady clock)"),
    (re.compile(r"::now\s*\("), "clock ::now()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"\bstd::clock\s*\("), "std::clock()"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bstd::(?:mt19937|minstd_rand|default_random_engine)\b"),
     "std <random> engine (use atscale::Rng)"),
]

R5_RE = re.compile(r"\bstd::(?:recursive_|shared_|timed_)?mutex\b")

# R6: directories where mutable statics would couple lockstep lanes.
R6_DIR_RE = re.compile(r"src/(?:cpu|mmu)/")
# A static *variable* declaration that is not constexpr/const: optional
# attributes / inline / thread_local, the static keyword, a type (one or
# more words, possibly templated), a declarator name, an optional
# initializer, and the terminating semicolon on the same line. Function
# declarations never match (the parameter list's parentheses fall where
# this expects the initializer or the semicolon).
R6_STATIC_RE = re.compile(
    r"^\s*(?:\[\[[^\]]*\]\]\s*)?(?:inline\s+|thread_local\s+)*static\s+"
    r"(?:inline\s+|thread_local\s+)*(?!constexpr\b|const\b)"
    r"(?:struct\s+|class\s+)?[A-Za-z_][\w:]*(?:<[^;()]*>)?"
    r"(?:\s+[A-Za-z_][\w:]*(?:<[^;()]*>)?)*"
    r"[\s*&]+([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\}|\[[^;]*\])?\s*;")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set)\s*<[^;]*?>\s+(\w+)")
WALK_READ_RE = re.compile(r"(?:\.|->)walk(?:\(\)|_\b)")
MISS_GUARD_RE = re.compile(r"\bMiss\b|\.hit\b|!\s*hit\b")
R4_LOOKBACK = 30

COUNTER_MEMBER_RE = re.compile(r"^\s*Count\s+(\w+_)\s*(?:=[^;]*)?;")

# R8: the translation-scheme seam and its registry.
SCHEME_SUBCLASS_RE = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*(?:public\s+)?TranslationScheme\b")
SCHEME_FACTORY_RE = re.compile(r"\bmakeTranslationScheme\b")
REGISTER_STATS_RE = re.compile(r"\bregisterStats\s*\(")

# R9: the cross-core sharing contract (docs/MULTICORE.md). A class
# marked with the ATSCALE_SHARED_ACROSS_CORES macro — or holding a
# member of a marked type — must show its safety evidence: an
# atscale::Mutex member, or a `cross-core:` comment explaining the
# lock-freedom. The comment evidence lives in comments, so it is
# matched against raw_lines; the Mutex evidence against code_lines.
SHARED_MARK_RE = re.compile(
    r"\b(?:class|struct)\s+ATSCALE_SHARED_ACROSS_CORES\s+(\w+)\b")
MUTEX_EVIDENCE_RE = re.compile(r"\bMutex\b")
CROSS_CORE_DOC_RE = re.compile(r"\bcross-core:")
# How far above a class declaration its doc comment may sit.
R9_DOC_LOOKBACK = 20

# R7: the event vocabulary and its two per-event tables.
EVENT_ENUM_RE = re.compile(r"\benum\s+class\s+EventId\b")
ENCODINGS_START_RE = re.compile(r"\bencodings\s*\[\s*\]\s*=")
NAMES_START_RE = re.compile(r"\bnumEvents\s*>\s*names\s*=")
EVENT_REF_RE = re.compile(r"\bEventId::(\w+)")
STRING_LITERAL_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(?:ATSCALE_\w+(?:\([^)]*\))?\s+)?(\w+)[^;]*$")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    suppressed: bool = False
    reason: str = ""

    def render(self):
        tag = " [suppressed: %s]" % self.reason if self.suppressed else ""
        return "%s:%d: %s: %s%s" % (self.path, self.line, self.rule,
                                    self.message, tag)


@dataclass
class SourceFile:
    path: str       # path relative to the scan root
    raw_lines: list
    code_lines: list = field(default_factory=list)  # comments/strings blanked
    suppressions: dict = field(default_factory=dict)  # line no -> {rule: reason}


def strip_comments_and_strings(lines):
    """Blank out comments and string/char literals, preserving line
    structure so findings keep their line numbers. Good enough for lint:
    no trigraphs, no raw strings spanning macros."""
    out = []
    in_block = False
    in_raw = None  # raw-string delimiter
    for line in lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            if in_raw is not None:
                end = line.find(')' + in_raw + '"', i)
                if end < 0:
                    i = n
                else:
                    i = end + len(in_raw) + 2
                    in_raw = None
                continue
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    i = end + 2
                    in_block = False
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch == 'R' and nxt == '"':
                m = re.match(r'R"([^(]*)\(', line[i:])
                if m:
                    in_raw = m.group(1)
                    i += m.end()
                    continue
            if ch in "\"'":
                j = i + 1
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == ch:
                        break
                    j += 1
                i = j + 1
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


def load_file(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as f:
        raw = f.read().splitlines()
    sf = SourceFile(path=rel, raw_lines=raw)
    sf.code_lines = strip_comments_and_strings(raw)
    for idx, line in enumerate(raw, start=1):
        for m in SUPPRESS_RE.finditer(line):
            rule, reason = m.group(1), m.group(2).strip()
            # A suppression covers its own line; a comment-only line
            # covers the next line too.
            sf.suppressions.setdefault(idx, {})[rule] = reason
            if line.strip().startswith("//"):
                sf.suppressions.setdefault(idx + 1, {})[rule] = reason
    return sf


def discover(root, paths):
    rels = []
    for top in paths:
        absd = os.path.join(root, top)
        if os.path.isfile(absd):
            rels.append(os.path.relpath(absd, root))
            continue
        for dirpath, dirnames, filenames in os.walk(absd):
            dirnames.sort()
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in EXTENSIONS:
                    rels.append(
                        os.path.relpath(os.path.join(dirpath, name), root))
    return rels


def in_scope(rule, rel):
    top = rel.split(os.sep, 1)[0]
    return top in RULE_SCOPES[rule] or not any(
        rel.startswith(d + os.sep) for d in SCAN_DIRS)


class RegexEngine:
    """Pure-regex implementation of every rule. Always available."""

    name = "regex"

    def check_r1(self, sf):
        for idx, line in enumerate(sf.code_lines, start=1):
            for pattern, what in R1_PATTERNS:
                if pattern.search(line):
                    yield Finding(sf.path, idx, "R1",
                                  "nondeterministic source: %s — derive "
                                  "from the seeded Rng or the simulated "
                                  "clock" % what)

    def _unordered_names(self, sf):
        names = set()
        for line in sf.code_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
        return names

    def check_r2(self, sf):
        names = self._unordered_names(sf)
        if not names:
            return
        iter_res = [
            (re.compile(r"for\s*\([^;)]*:\s*(?:\w+\s*(?:\.|->)\s*)?(%s)\s*\)"
                        % "|".join(map(re.escape, sorted(names)))), "range-for"),
            (re.compile(r"\b(%s)\s*(?:\.|->)\s*(?:begin|cbegin)\s*\("
                        % "|".join(map(re.escape, sorted(names)))), "iterator"),
        ]
        for idx, line in enumerate(sf.code_lines, start=1):
            for pattern, how in iter_res:
                m = pattern.search(line)
                if m:
                    yield Finding(sf.path, idx, "R2",
                                  "%s over unordered container '%s' — "
                                  "iteration order is nondeterministic; "
                                  "iterate a sorted or declared-order view"
                                  % (how, m.group(1)))

    def check_r4(self, sf):
        for idx, line in enumerate(sf.code_lines, start=1):
            if not WALK_READ_RE.search(line):
                continue
            lo = max(0, idx - R4_LOOKBACK)
            window = sf.code_lines[lo:idx]
            if not any(MISS_GUARD_RE.search(w) for w in window):
                yield Finding(sf.path, idx, "R4",
                              "MmuResult walk access with no TLB-miss "
                              "guard in the preceding %d lines — the "
                              "fields are undefined on TLB hits"
                              % R4_LOOKBACK)

    def check_r5(self, sf):
        if sf.path == R5_EXEMPT:
            return
        for idx, line in enumerate(sf.code_lines, start=1):
            if R5_RE.search(line):
                yield Finding(sf.path, idx, "R5",
                              "raw std::mutex — use atscale::Mutex from "
                              "util/thread_annotations.hh so clang's "
                              "thread-safety analysis covers it")

    def check_r6(self, sf):
        rel = sf.path.replace(os.sep, "/")
        if rel.startswith("src/") and not R6_DIR_RE.match(rel):
            return
        for idx, line in enumerate(sf.code_lines, start=1):
            m = R6_STATIC_RE.match(line)
            if m:
                yield Finding(sf.path, idx, "R6",
                              "mutable static '%s' in the lane-shared "
                              "hot path — lockstep lane groups interleave "
                              "many Core/Mmu instances in one thread, so "
                              "per-run state must be an instance member "
                              "(static constexpr and static member "
                              "functions are fine)" % m.group(1))

    # ---- R3 (cross-file) -------------------------------------------------

    def _stats_classes(self, files):
        """Map class name -> (path, line, [counter members]) for classes
        declaring registerStats or resetStats."""
        classes = {}
        for sf in files:
            if not in_scope("R3", sf.path):
                continue
            stack = []  # (class name or None, brace depth at entry)
            depth = 0
            pending = None
            for idx, line in enumerate(sf.code_lines, start=1):
                if pending is None:
                    m = CLASS_RE.match(line)
                    if m and not line.rstrip().endswith(";"):
                        pending = m.group(1)
                for ch in line:
                    if ch == "{":
                        depth += 1
                        if pending is not None:
                            stack.append((pending, depth, idx))
                            classes.setdefault(
                                pending,
                                {"path": sf.path, "line": idx,
                                 "counters": [], "has_stats": False})
                            pending = None
                    elif ch == "}":
                        if stack and stack[-1][1] == depth:
                            stack.pop()
                        depth -= 1
                if stack:
                    cls = classes[stack[-1][0]]
                    cm = COUNTER_MEMBER_RE.match(line)
                    if cm:
                        cls["counters"].append((cm.group(1), idx))
                    if "registerStats" in line or "resetStats" in line:
                        cls["has_stats"] = True
        return {name: info for name, info in classes.items()
                if info["has_stats"] and info["counters"]}

    def _registration_text(self, files):
        """Concatenated text of every registerStats implementation body.
        Brace tracking runs on the comment/string-stripped view, but the
        collected text is the raw source: the registered stat *name*
        (a string literal like ".initiated") is evidence of registration
        just as much as the accessor call reading the counter."""
        chunks = []
        for sf in files:
            text = sf.code_lines
            for idx, line in enumerate(text):
                if "registerStats" not in line:
                    continue
                depth = 0
                started = False
                j = idx
                body = []
                while j < len(text):
                    declaration_end = False
                    for ch in text[j]:
                        if ch == "{":
                            depth += 1
                            started = True
                        elif ch == "}":
                            depth -= 1
                        elif ch == ";" and depth == 0 and not started:
                            # `registerStats(...);` with no body: a
                            # declaration, not registration evidence.
                            declaration_end = True
                            break
                    if declaration_end:
                        body = []
                        break
                    body.append(sf.raw_lines[j])
                    if started and depth <= 0:
                        break
                    j += 1
                    if j - idx > 200:  # runaway: unbalanced braces
                        body = []
                        break
                chunks.extend(body)
        return "\n".join(chunks).lower()

    def check_r3(self, files):
        reg_text = self._registration_text(files)
        for cls, info in sorted(self._stats_classes(files).items()):
            for member, line in info["counters"]:
                accessor = member.rstrip("_").lower()
                if accessor in reg_text or member.lower() in reg_text:
                    continue
                yield Finding(info["path"], line, "R3",
                              "counter '%s' of stats-bearing class %s is "
                              "never registered with StatsRegistry — "
                              "register it (or suppress with a reason if "
                              "it is internal bookkeeping, not a "
                              "statistic)" % (member, cls))

    # ---- R7 (cross-file) -------------------------------------------------

    def _event_enum_members(self, files):
        """(member, path, line) for every EventId member bar NumEvents."""
        members = []
        for sf in files:
            if not in_scope("R7", sf.path):
                continue
            in_enum = False
            in_body = False
            for idx, line in enumerate(sf.code_lines, start=1):
                if not in_enum:
                    if EVENT_ENUM_RE.search(line):
                        in_enum = True
                        in_body = "{" in line
                    continue
                if not in_body:
                    in_body = "{" in line
                    continue
                if "}" in line:
                    # One EventId enum per tree: the first body wins.
                    return members
                head = line.split("=", 1)[0].split(",", 1)[0].strip()
                m = re.fullmatch(r"[A-Za-z_]\w*", head)
                if m and head != "NumEvents":
                    members.append((head, sf.path, idx))
        return members

    def _table_span(self, files, start_re):
        """(path, start line, body lines 0-based span) of the first table
        opened by start_re and closed by '};', or None."""
        for sf in files:
            if not in_scope("R7", sf.path):
                continue
            for idx, line in enumerate(sf.code_lines, start=1):
                if not start_re.search(line):
                    continue
                for end in range(idx - 1, len(sf.code_lines)):
                    if "};" in sf.code_lines[end]:
                        return sf, idx, (idx - 1, end + 1)
        return None

    def check_r7(self, files):
        members = self._event_enum_members(files)
        if not members:
            return

        encodings = self._table_span(files, ENCODINGS_START_RE)
        if encodings is not None:
            sf, _, (lo, hi) = encodings
            mapped = set()
            for line in sf.code_lines[lo:hi]:
                for m in EVENT_REF_RE.finditer(line):
                    mapped.add(m.group(1))
            for member, path, line in members:
                if member not in mapped:
                    yield Finding(path, line, "R7",
                                  "EventId::%s has no entry in the perf "
                                  "backend's encodings[] table — the "
                                  "event silently reads as zero on real "
                                  "hardware; add an encoding (or an "
                                  "explicit suppression naming why it is "
                                  "simulator-only)" % member)

        names = self._table_span(files, NAMES_START_RE)
        if names is not None:
            sf, start, (lo, hi) = names
            literals = 0
            for raw in sf.raw_lines[lo:hi]:
                literals += len(STRING_LITERAL_RE.findall(raw))
            if literals != len(members):
                yield Finding(sf.path, start, "R7",
                              "pretty-name map holds %d name(s) for %d "
                              "EventId member(s) — every event needs a "
                              "name or eventName() panics past the end"
                              % (literals, len(members)))

    # ---- R8 (cross-file) -------------------------------------------------

    def _scheme_subclasses(self, files):
        """(class name, SourceFile, line) per TranslationScheme subclass."""
        subclasses = []
        for sf in files:
            if not in_scope("R8", sf.path):
                continue
            for idx, line in enumerate(sf.code_lines, start=1):
                m = SCHEME_SUBCLASS_RE.search(line)
                if m:
                    subclasses.append((m.group(1), sf, idx))
        return subclasses

    def check_r8(self, files):
        subclasses = self._scheme_subclasses(files)
        if not subclasses:
            return

        # The registry's reach: every file that spells the factory name
        # (the registry itself plus its callers) — a subclass never
        # mentioned there cannot be constructed by name.
        factory_text = ""
        for sf in files:
            if not in_scope("R8", sf.path):
                continue
            if any(SCHEME_FACTORY_RE.search(l) for l in sf.code_lines):
                factory_text += "\n".join(sf.code_lines) + "\n"

        for cls, sf, line in subclasses:
            if not re.search(r"\b%s\b" % re.escape(cls), factory_text):
                yield Finding(sf.path, line, "R8",
                              "TranslationScheme subclass '%s' is not "
                              "constructible through the scheme registry "
                              "(mmu/scheme/registry.cc) — add it to "
                              "kSchemeNames and makeTranslationScheme, or "
                              "no sweep can ever select it" % cls)

        # registerStats: scan the subclass's declaration span (its decl
        # line up to the next subclass in the same file, or EOF).
        by_file = {}
        for cls, sf, line in subclasses:
            by_file.setdefault(sf.path, []).append((line, cls, sf))
        for path in sorted(by_file):
            spans = sorted(by_file[path])
            for i, (line, cls, sf) in enumerate(spans):
                end = (spans[i + 1][0] - 1 if i + 1 < len(spans)
                       else len(sf.code_lines))
                body = sf.code_lines[line - 1:end]
                if not any(REGISTER_STATS_RE.search(l) for l in body):
                    yield Finding(sf.path, line, "R8",
                                  "TranslationScheme subclass '%s' "
                                  "declares no registerStats — schemes "
                                  "without it are invisible to the "
                                  "observability layer (every scheme "
                                  "must register every statistic it "
                                  "keeps)" % cls)

    # ---- R9 (cross-file) -------------------------------------------------

    def _class_spans(self, sf):
        """(name, decl line, end line) per class/struct declared in sf.

        A span runs to the next declaration in the same file (or EOF) —
        the same flat approximation check_r8 uses, good enough because
        a member and its doc comment are always adjacent.
        """
        decls = []
        for idx, line in enumerate(sf.code_lines, start=1):
            m = CLASS_RE.match(line)
            if m:
                decls.append((idx, m.group(1)))
        spans = []
        for i, (line, name) in enumerate(decls):
            end = (decls[i + 1][0] - 1 if i + 1 < len(decls)
                   else len(sf.code_lines))
            spans.append((name, line, end))
        return spans

    def check_r9(self, files):
        marked = set()
        for sf in files:
            if not in_scope("R9", sf.path):
                continue
            for line in sf.code_lines:
                m = SHARED_MARK_RE.search(line)
                if m:
                    marked.add(m.group(1))
        if not marked:
            return

        # A member declaration of a marked type: the type name, an
        # optional pointer/reference/wrapper tail, a trailing-underscore
        # member name (repo convention), and the terminating semicolon.
        member_re = re.compile(
            r"\b(?:%s)\b[^();]*[\s*&>](\w+_)\s*(?:=[^;]*|\{[^;]*\})?;"
            % "|".join(sorted(re.escape(m) for m in marked)))

        for sf in files:
            if not in_scope("R9", sf.path):
                continue
            for name, decl, end in self._class_spans(sf):
                is_marked = name in marked
                holds = any(member_re.search(l)
                            for l in sf.code_lines[decl - 1:end])
                if not (is_marked or holds):
                    continue
                lo = max(0, decl - 1 - R9_DOC_LOOKBACK)
                if any(MUTEX_EVIDENCE_RE.search(l)
                       for l in sf.code_lines[lo:end]):
                    continue
                if any(CROSS_CORE_DOC_RE.search(l)
                       for l in sf.raw_lines[lo:end]):
                    continue
                what = ("is marked ATSCALE_SHARED_ACROSS_CORES"
                        if is_marked
                        else "holds a member of a marked shared type")
                yield Finding(sf.path, decl, "R9",
                              "class '%s' %s but shows no safety "
                              "evidence — guard the shared state with "
                              "an annotated atscale::Mutex or document "
                              "the lock-freedom with a `cross-core:` "
                              "comment (docs/MULTICORE.md)"
                              % (name, what))


class ClangEngine(RegexEngine):
    """AST-backed refinement of R2/R5 when python libclang is available.

    Inherits the regex implementations for R1/R3/R4, which are textual
    properties anyway (R1: banned identifiers; R4: guard proximity).
    Any parse failure falls back to the regex rule for that file, so a
    missing header or version skew can never turn the gate off.
    """

    name = "libclang"

    def __init__(self, cindex, root):
        self.cindex = cindex
        self.root = root
        self.index = cindex.Index.create()
        self.args = ["-x", "c++", "-std=c++20",
                     "-I", os.path.join(root, "src")]

    def _parse(self, sf):
        return self.index.parse(os.path.join(self.root, sf.path),
                                args=self.args)

    def _walk(self, cursor, sf_abs):
        for child in cursor.get_children():
            if child.location.file and child.location.file.name == sf_abs:
                yield child
                yield from self._walk(child, sf_abs)

    def check_r2(self, sf):
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            found = False
            for cur in self._walk(tu.cursor, sf_abs):
                if cur.kind != kind.CXX_FOR_RANGE_STMT:
                    continue
                children = list(cur.get_children())
                if not children:
                    continue
                range_type = children[-2].type.spelling if len(
                    children) >= 2 else ""
                if "unordered_map" in range_type or \
                        "unordered_set" in range_type:
                    found = True
                    yield Finding(sf.path, cur.location.line, "R2",
                                  "range-for over unordered container "
                                  "(%s) — iteration order is "
                                  "nondeterministic" % range_type)
            # AST found nothing: trust it only if the regex agrees there
            # is nothing; a parse hiccup silently dropping the loop body
            # must not hide a finding.
            if not found:
                yield from super().check_r2(sf)
        except Exception:
            yield from super().check_r2(sf)

    def check_r5(self, sf):
        if sf.path == R5_EXEMPT:
            return
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            reported = set()
            for cur in self._walk(tu.cursor, sf_abs):
                if cur.kind not in (kind.FIELD_DECL, kind.VAR_DECL):
                    continue
                if R5_RE.search(cur.type.spelling or ""):
                    if cur.location.line not in reported:
                        reported.add(cur.location.line)
                        yield Finding(sf.path, cur.location.line, "R5",
                                      "raw %s member/variable — use "
                                      "atscale::Mutex" % cur.type.spelling)
            yield from (f for f in super().check_r5(sf)
                        if f.line not in reported)
        except Exception:
            yield from super().check_r5(sf)


def make_engine(requested, root):
    if requested in ("auto", "libclang"):
        try:
            import clang.cindex as cindex  # noqa: deferred, optional
            cindex.Index.create()
            return ClangEngine(cindex, root)
        except Exception:
            if requested == "libclang":
                print("atscale-lint: libclang requested but unavailable; "
                      "falling back to the regex engine", file=sys.stderr)
    return RegexEngine()


def apply_suppressions(findings, files_by_path):
    for f in findings:
        sup = files_by_path[f.path].suppressions.get(f.line, {})
        if f.rule in sup:
            f.suppressed = True
            f.reason = sup[f.rule]
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="atscale-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan "
                             "(default: %s)" % " ".join(SCAN_DIRS))
    parser.add_argument("--root", default=".",
                        help="repo root (scopes like 'src/' are resolved "
                             "against it)")
    parser.add_argument("--engine", choices=["auto", "libclang", "regex"],
                        default="auto")
    parser.add_argument("--rules", default="R1,R2,R3,R4,R5,R6,R7,R8,R9",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--max-suppressions", type=int, default=None,
                        help="fail if the repo carries more than N "
                             "suppressions (CI uses 10)")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the summary and failures")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    paths = args.paths or [d for d in SCAN_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    rules = [r.strip() for r in args.rules.split(",") if r.strip()]

    rels = discover(root, paths)
    files = [load_file(root, rel) for rel in rels]
    files_by_path = {sf.path: sf for sf in files}
    engine = make_engine(args.engine, root)

    findings = []
    per_file_checks = {"R1": "check_r1", "R2": "check_r2",
                       "R4": "check_r4", "R5": "check_r5",
                       "R6": "check_r6"}
    for sf in files:
        for rule, method in per_file_checks.items():
            if rule in rules and in_scope(rule, sf.path):
                findings.extend(getattr(engine, method)(sf))
    if "R3" in rules:
        findings.extend(engine.check_r3(files))
    if "R7" in rules:
        findings.extend(engine.check_r7(files))
    if "R8" in rules:
        findings.extend(engine.check_r8(files))
    if "R9" in rules:
        findings.extend(engine.check_r9(files))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    apply_suppressions(findings, files_by_path)

    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if args.json:
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            if not f.suppressed or not args.quiet:
                print(f.render())
        print("atscale-lint (%s engine): %d files, %d finding(s), "
              "%d suppressed" % (engine.name, len(files),
                                 len(unsuppressed), len(suppressed)))

    status = 0
    if unsuppressed:
        status = 1
    if args.max_suppressions is not None and \
            len(suppressed) > args.max_suppressions:
        print("atscale-lint: %d suppressions exceed the budget of %d — "
              "fix some findings or raise the budget deliberately"
              % (len(suppressed), args.max_suppressions), file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
