#!/usr/bin/env python3
"""atscale-lint: repo-specific invariant checks for the atscale tree.

The repo's correctness story rests on invariants no off-the-shelf tool
knows about: bitwise determinism of every run (serial == parallel sweep
output, fastpath-on == fastpath-off counters, golden files), and the
exactness contract around performance counters (docs/PERF.md). This tool
enforces the statically checkable parts of those invariants:

  R1  no wall-clock / ambient-randomness calls in src/ — every stochastic
      or time-like quantity must derive from the seeded Rng / the
      simulated clock, or results stop being a pure function of RunSpec.
  R2  no iteration over std::unordered_map / std::unordered_set —
      iteration order is implementation- and run-dependent, so anything
      it feeds (output, stats, even victim selection) goes
      nondeterministic. Iterate a sorted/declared-order container
      instead.
  R3  every `Count ..._` counter member of a stats-bearing class (one
      declaring registerStats() or resetStats()) must be registered with
      StatsRegistry — a counter that exists but never reaches the
      registry silently breaks the "every counter-producing path is
      observable" completeness contract.
  R4  MmuResult's walk fields are deliberately left unwritten on TLB
      hits (see mmu/mmu.hh); reads must sit in a branch that established
      tlbLevel == TlbLevel::Miss.
  R5  no raw std::mutex (or friends) outside util/thread_annotations.hh
      — cross-thread state must use the annotated atscale::Mutex so
      clang's -Wthread-safety can prove the locking discipline.
  R6  no mutable static state in src/cpu or src/mmu — the lockstep lane
      executor (core/lane_exec.hh) interleaves many Core/Mmu instances
      in one thread and the sweep engine runs groups concurrently, so a
      static that carries per-run state couples lanes and breaks the
      lane exactness contract. Static member functions and
      static constexpr tables are fine; per-run state must be an
      instance member.
  R7  every EventId enum member must appear in the perf backend's
      encodings[] table and be covered by the pretty-name map (the
      names array sized by numEvents) — an event missing from the
      encodings table silently reads as zero on real hardware, and a
      short name table turns eventName() into a panic. Cross-file, like
      R3: the enum, the table, and the map live in different files.
  R8  every TranslationScheme subclass must be constructible through the
      scheme registry (mmu/scheme/registry.cc) and must declare
      registerStats — a scheme outside the registry can never be
      selected by a sweep (dead modelling code), and one without
      registerStats is invisible to the observability layer, breaking
      the "all schemes alike" contract of docs/TRANSLATION_SCHEMES.md.
      Cross-file, like R7: the subclass and the factory live apart.
  R9  every class marked ATSCALE_SHARED_ACROSS_CORES — and every class
      holding a member of a marked type — must either guard the shared
      state with the annotated atscale::Mutex or carry a `cross-core:`
      comment documenting why lock-free access is safe (the SharedSystem
      interleave steps one core at a time on one thread,
      docs/MULTICORE.md). Cross-core structure with neither is a data
      race waiting for the first concurrent caller, and TSan can only
      catch it at runtime on a racing schedule. Cross-file, like R8:
      the marker macro and the holders live apart.
  R10 cycle conservation (src/cpu, src/mmu, src/sys, src/cache): every
      `+=` into a cycle/stall accumulator member must flow into the
      Eq-1 decomposition — by being registered with StatsRegistry (by
      name or through a one-line accessor), by publishing into an Eq-1
      counter event through at most one local alias, or by carrying an
      explicit `eq1: model-state` annotation for quantities that feed
      the model rather than the accounting. An orphan charge is exactly
      the bug the runtime CycleLedger (src/obs/ledger.hh) catches
      dynamically; this rule catches it statically. Cross-file: the
      charge, the declaration, and the registration usually live apart.
  R11 determinism hazards (same scope): (a) pointer-keyed maps/sets —
      iteration order is address order, different every run; (b) float
      accumulation inside merge/combine/aggregate/reduce paths, whose
      result depends on merge order; (c) structs mixing initialized
      members with silently uninitialized scalars (the MmuResult shape)
      unless the gap is documented as deliberate ("uninitialized" /
      "meaningful only" in the doc comment).
  R12 scheme-contract conformance (src/mmu/scheme): a TranslationScheme
      backend charges extra cost only through MmuResult fields it owns
      (schemeExtraCycles, tlbExtraLatency) and the walkSlot()-provided
      WalkResult; it never touches counters/EventId/chargeCycles, and
      it mutates platform state only through the documented seams
      (space_.translate/findVma/touch/pageTable/reservedBytes,
      hierarchy_.access, alloc.allocate, mem_.read64) — see
      docs/TRANSLATION_SCHEMES.md.

Findings can be suppressed, one line at a time, with an inline comment
on the offending line or the line directly above it:

    // atscale-lint: allow(R2 plan() output is resorted before emission)

The reason text is mandatory and is reported alongside the suppression
count, so the review burden of each escape hatch stays visible. The
budget is enforced per rule as well as globally: `--max-suppressions
"2,R3=2"` allows at most two suppressions total, all of them R3.

Engines: with the libclang python bindings installed (python3-clang),
an AST engine handles R1/R2/R4/R5/R6 with real lexical/type/guard
information and builds R10's charge-flow graph from AST nodes
(compound assignments, publication calls, alias initializers) instead
of regexes, falling back to the regex engine per file on parse errors
so the gate can never silently skip. `--engine=libclang` *requires*
the bindings and exits 2 when they are missing (CI uses this so the
AST engine cannot silently degrade); `--engine=auto` prefers them but
falls back. Fixture tests pin --engine=regex for determinism across
environments and separately assert, where libclang is importable,
that both engines agree on the fixture corpus.
"""

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

SCAN_DIRS = ["src", "bench", "examples", "tests"]
EXTENSIONS = {".cc", ".hh", ".cpp", ".hpp", ".h"}

# The one file allowed to spell std::mutex: the annotated wrapper itself.
R5_EXEMPT = os.path.join("src", "util", "thread_annotations.hh")

RULE_SCOPES = {
    "R1": ["src"],
    "R2": ["src", "bench", "examples"],
    "R3": ["src"],
    "R4": ["src", "bench", "examples", "tests"],
    "R5": ["src", "bench", "examples", "tests"],
    "R6": ["src"],
    "R7": ["src"],
    "R8": ["src"],
    "R9": ["src"],
    "R10": ["src"],
    "R11": ["src"],
    "R12": ["src"],
}

# Rules whose src/ scope is a subset of subdirectories. Paths outside
# src/ (fixtures scanned as explicit files) still follow the RULE_SCOPES
# top-dir check; under src/, these narrow the reach further.
RULE_SUBDIRS = {
    "R10": ("src/cpu/", "src/mmu/", "src/sys/", "src/cache/"),
    "R11": ("src/cpu/", "src/mmu/", "src/sys/", "src/cache/"),
    "R12": ("src/mmu/scheme/",),
}

SUPPRESS_RE = re.compile(
    r"//\s*atscale-lint:\s*allow\(\s*(R\d+)\s+([^)]+)\)")

# R1: ambient nondeterminism. Each entry: (regex, what it is).
R1_PATTERNS = [
    (re.compile(r"\bstd::chrono\b"), "std::chrono (wall/steady clock)"),
    (re.compile(r"::now\s*\("), "clock ::now()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "time()"),
    (re.compile(r"\bstd::clock\s*\("), "std::clock()"),
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bstd::(?:mt19937|minstd_rand|default_random_engine)\b"),
     "std <random> engine (use atscale::Rng)"),
]

R5_RE = re.compile(r"\bstd::(?:recursive_|shared_|timed_)?mutex\b")

# R6: directories where mutable statics would couple lockstep lanes.
R6_DIR_RE = re.compile(r"src/(?:cpu|mmu)/")
# A static *variable* declaration that is not constexpr/const: optional
# attributes / inline / thread_local, the static keyword, a type (one or
# more words, possibly templated), a declarator name, an optional
# initializer, and the terminating semicolon on the same line. Function
# declarations never match (the parameter list's parentheses fall where
# this expects the initializer or the semicolon).
R6_STATIC_RE = re.compile(
    r"^\s*(?:\[\[[^\]]*\]\]\s*)?(?:inline\s+|thread_local\s+)*static\s+"
    r"(?:inline\s+|thread_local\s+)*(?!constexpr\b|const\b)"
    r"(?:struct\s+|class\s+)?[A-Za-z_][\w:]*(?:<[^;()]*>)?"
    r"(?:\s+[A-Za-z_][\w:]*(?:<[^;()]*>)?)*"
    r"[\s*&]+([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\}|\[[^;]*\])?\s*;")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set)\s*<[^;]*?>\s+(\w+)")
WALK_READ_RE = re.compile(r"(?:\.|->)walk(?:\(\)|_\b)")
MISS_GUARD_RE = re.compile(r"\bMiss\b|\.hit\b|!\s*hit\b")
R4_LOOKBACK = 30

COUNTER_MEMBER_RE = re.compile(r"^\s*Count\s+(\w+_)\s*(?:=[^;]*)?;")

# R8: the translation-scheme seam and its registry.
SCHEME_SUBCLASS_RE = re.compile(
    r"\bclass\s+(\w+)\s*(?:final\s*)?:\s*(?:public\s+)?TranslationScheme\b")
SCHEME_FACTORY_RE = re.compile(r"\bmakeTranslationScheme\b")
REGISTER_STATS_RE = re.compile(r"\bregisterStats\s*\(")

# R9: the cross-core sharing contract (docs/MULTICORE.md). A class
# marked with the ATSCALE_SHARED_ACROSS_CORES macro — or holding a
# member of a marked type — must show its safety evidence: an
# atscale::Mutex member, or a `cross-core:` comment explaining the
# lock-freedom. The comment evidence lives in comments, so it is
# matched against raw_lines; the Mutex evidence against code_lines.
SHARED_MARK_RE = re.compile(
    r"\b(?:class|struct)\s+ATSCALE_SHARED_ACROSS_CORES\s+(\w+)\b")
MUTEX_EVIDENCE_RE = re.compile(r"\bMutex\b")
CROSS_CORE_DOC_RE = re.compile(r"\bcross-core:")
# How far above a class declaration its doc comment may sit.
R9_DOC_LOOKBACK = 20

# R7: the event vocabulary and its two per-event tables.
EVENT_ENUM_RE = re.compile(r"\benum\s+class\s+EventId\b")
ENCODINGS_START_RE = re.compile(r"\bencodings\s*\[\s*\]\s*=")
NAMES_START_RE = re.compile(r"\bnumEvents\s*>\s*names\s*=")
EVENT_REF_RE = re.compile(r"\bEventId::(\w+)")
STRING_LITERAL_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
CLASS_RE = re.compile(r"^\s*(?:class|struct)\s+(?:ATSCALE_\w+(?:\([^)]*\))?\s+)?(\w+)[^;]*$")

# ---- R10: the cycle-conservation flow graph -----------------------------
#
# A charge site is `member_ += expr` (optionally subscripted) where the
# member's name says it holds cycles or stalls. Evidence that the charge
# reaches the Eq-1 decomposition, in order of directness:
#   1. the member (or its underscore-stripped accessor name) appears in
#      some registerStats body (R3's registration text, reused);
#   2. the member reaches a one-line accessor `name() { return member; }`
#      whose name appears in a registerStats body;
#   3. the member flows — directly or through one local alias — into
#      counters_.add(EventId::<Eq-1 event>, ...);
#   4. the declaration carries an `eq1: model-state` annotation in its
#      doc comment, marking it as model input rather than accounting.
R10_CHARGE_RE = re.compile(
    r"\b([A-Za-z]\w*_)\s*(?:\[[^\]]*\]\s*)?\+=")
R10_ACCUM_NAME_RE = re.compile(r"(?i)(?:cycle|stall)")
R10_ALIAS_RE = re.compile(
    r"\b(?:auto|double|float|Cycles|Count)\s+(\w+)\s*=\s*([^;]*);")
R10_COUNTER_ADD_RE = re.compile(
    r"\bcounters_\s*(?:\.|->)\s*add\s*\(\s*EventId::(\w+)\s*,\s*([^;]*)\)")
R10_ACCESSOR_RE_TMPL = (
    r"\b(\w+)\s*\(\)\s*(?:const\s*)?(?:noexcept\s*)?\{\s*return\s+%s\b")
R10_EQ1_EVENTS = {
    "CpuClkUnhalted",               # the total every component sums to
    "DtlbLoadMissesWalkDuration",   # walk component
    "DtlbStoreMissesWalkDuration",
}
R10_MODEL_STATE_RE = re.compile(r"eq1:\s*model-state")
R10_DOC_LOOKBACK = 6

# Mirror of src/obs/ledger.cc's component/role tables, for the fixture
# harness's drift check: the static rule and the runtime ledger must
# agree on the Eq-1 component vocabulary.
R10_LEDGER_COMPONENTS = {
    "base_exec": "base",
    "branch_mispredict": "base",
    "machine_clear": "base",
    "l2_tlb_hit": "tlb",
    "page_walk": "walk",
    "data_stall": "memory",
    "scheme_software": "software",
    "shootdown_ipi": "coherence",
}

# ---- R11: determinism hazards -------------------------------------------
R11_PTR_KEY_RE = re.compile(
    r"\bstd::(?:unordered_)?(?:map|set)\s*<\s*(?:const\s+)?"
    r"[A-Za-z_][\w:]*(?:<[^<>]*>)?\s*\*")
R11_MERGE_DEF_RE = re.compile(
    r"^[^=;(]*\b(\w*(?i:merge|combine|aggregate|reduce)\w*)\s*\(")
R11_FLOAT_LOCAL_RE = re.compile(r"^\s*(?:double|float)\s+(\w+)\s*[={]")
R11_SCALAR_MEMBER_RE = re.compile(
    r"^\s*(?:bool|int|long|unsigned(?:\s+long)?|float|double|char|"
    r"Cycles|Count|Addr|PhysAddr|VirtAddr|std::size_t|size_t|"
    r"std::u?int(?:8|16|32|64)_t|u?int(?:8|16|32|64)_t)\s+"
    r"(\w+)\s*(=[^;]*|\{[^;]*\})?\s*;")
R11_STRUCT_RE = re.compile(r"^\s*struct\s+(\w+)\s*(?:final\s*)?$|"
                           r"^\s*struct\s+(\w+)\s*(?:final\s*)?\{")
R11_DOC_EVIDENCE_RE = re.compile(
    r"(?i)uninitialized|meaningful only|deliberately")
R11_DOC_LOOKBACK = 12

# ---- R12: the translation-scheme contract -------------------------------
#
# The seam file itself (walkSlot's definition, poisonWalk) is the
# contract, not a client of it.
R12_EXEMPT = "src/mmu/scheme/translation_scheme.hh"
R12_BANNED_RE = re.compile(
    r"\b(?:chargeCycles|CounterSet|counters_)\b|\bEventId::")
# Platform receivers a backend may touch, and the documented methods
# (docs/TRANSLATION_SCHEMES.md "What a backend may touch").
R12_SEAM_METHODS = {
    "space_": {"translate", "findVma", "touch", "pageTable",
               "reservedBytes"},
    "hierarchy_": {"access"},
    "mem_": {"read64"},
    "alloc": {"allocate"},
}
R12_RECEIVER_RE = re.compile(
    r"\b(space_|hierarchy_|mem_|alloc)\s*(?:\.|->)\s*(\w+)\s*\(")
# Accounting writes: x.cycles / x->cycles must target the walkSlot()'s
# WalkResult; result.schemeExtraCycles / result.tlbExtraLatency must
# target an MmuResult.
R12_CYCLES_WRITE_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*cycles\s*(?:\+=|-=|=(?!=))")
R12_MMU_FIELD_WRITE_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)\s*(schemeExtraCycles|tlbExtraLatency)\s*"
    r"(?:\+=|-=|=(?!=))")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str
    suppressed: bool = False
    reason: str = ""

    def render(self):
        tag = " [suppressed: %s]" % self.reason if self.suppressed else ""
        return "%s:%d: %s: %s%s" % (self.path, self.line, self.rule,
                                    self.message, tag)


@dataclass
class SourceFile:
    path: str       # path relative to the scan root
    raw_lines: list
    code_lines: list = field(default_factory=list)  # comments/strings blanked
    suppressions: dict = field(default_factory=dict)  # line no -> {rule: reason}


def strip_comments_and_strings(lines):
    """Blank out comments and string/char literals, preserving line
    structure so findings keep their line numbers. Good enough for lint:
    no trigraphs, no raw strings spanning macros."""
    out = []
    in_block = False
    in_raw = None  # raw-string delimiter
    for line in lines:
        buf = []
        i, n = 0, len(line)
        while i < n:
            if in_raw is not None:
                end = line.find(')' + in_raw + '"', i)
                if end < 0:
                    i = n
                else:
                    i = end + len(in_raw) + 2
                    in_raw = None
                continue
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    i = end + 2
                    in_block = False
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch == 'R' and nxt == '"':
                m = re.match(r'R"([^(]*)\(', line[i:])
                if m:
                    in_raw = m.group(1)
                    i += m.end()
                    continue
            if ch in "\"'":
                j = i + 1
                while j < n:
                    if line[j] == "\\":
                        j += 2
                        continue
                    if line[j] == ch:
                        break
                    j += 1
                i = j + 1
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


def load_file(root, rel):
    with open(os.path.join(root, rel), encoding="utf-8",
              errors="replace") as f:
        raw = f.read().splitlines()
    sf = SourceFile(path=rel, raw_lines=raw)
    sf.code_lines = strip_comments_and_strings(raw)
    for idx, line in enumerate(raw, start=1):
        for m in SUPPRESS_RE.finditer(line):
            rule, reason = m.group(1), m.group(2).strip()
            # A suppression covers its own line; a comment-only line
            # covers the next line too.
            sf.suppressions.setdefault(idx, {})[rule] = reason
            if line.strip().startswith("//"):
                sf.suppressions.setdefault(idx + 1, {})[rule] = reason
    return sf


def discover(root, paths):
    rels = []
    for top in paths:
        absd = os.path.join(root, top)
        if os.path.isfile(absd):
            rels.append(os.path.relpath(absd, root))
            continue
        for dirpath, dirnames, filenames in os.walk(absd):
            dirnames.sort()
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in EXTENSIONS:
                    rels.append(
                        os.path.relpath(os.path.join(dirpath, name), root))
    return rels


def in_scope(rule, rel):
    norm = rel.replace(os.sep, "/")
    top = norm.split("/", 1)[0]
    if not any(norm.startswith(d + "/") for d in SCAN_DIRS):
        # Explicit file argument outside the scan tree (fixture runs):
        # every rule applies, so fixtures can exercise any rule from any
        # staging path.
        return True
    if top not in RULE_SCOPES[rule]:
        return False
    subdirs = RULE_SUBDIRS.get(rule)
    if subdirs and top == "src":
        return any(norm.startswith(s) for s in subdirs)
    return True


class RegexEngine:
    """Pure-regex implementation of every rule. Always available."""

    name = "regex"

    def check_r1(self, sf):
        for idx, line in enumerate(sf.code_lines, start=1):
            for pattern, what in R1_PATTERNS:
                if pattern.search(line):
                    yield Finding(sf.path, idx, "R1",
                                  "nondeterministic source: %s — derive "
                                  "from the seeded Rng or the simulated "
                                  "clock" % what)

    def _unordered_names(self, sf):
        names = set()
        for line in sf.code_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
        return names

    def check_r2(self, sf):
        names = self._unordered_names(sf)
        if not names:
            return
        iter_res = [
            (re.compile(r"for\s*\([^;)]*:\s*(?:\w+\s*(?:\.|->)\s*)?(%s)\s*\)"
                        % "|".join(map(re.escape, sorted(names)))), "range-for"),
            (re.compile(r"\b(%s)\s*(?:\.|->)\s*(?:begin|cbegin)\s*\("
                        % "|".join(map(re.escape, sorted(names)))), "iterator"),
        ]
        for idx, line in enumerate(sf.code_lines, start=1):
            for pattern, how in iter_res:
                m = pattern.search(line)
                if m:
                    yield Finding(sf.path, idx, "R2",
                                  "%s over unordered container '%s' — "
                                  "iteration order is nondeterministic; "
                                  "iterate a sorted or declared-order view"
                                  % (how, m.group(1)))

    def check_r4(self, sf):
        for idx, line in enumerate(sf.code_lines, start=1):
            if not WALK_READ_RE.search(line):
                continue
            lo = max(0, idx - R4_LOOKBACK)
            window = sf.code_lines[lo:idx]
            if not any(MISS_GUARD_RE.search(w) for w in window):
                yield Finding(sf.path, idx, "R4",
                              "MmuResult walk access with no TLB-miss "
                              "guard in the preceding %d lines — the "
                              "fields are undefined on TLB hits"
                              % R4_LOOKBACK)

    def check_r5(self, sf):
        if sf.path == R5_EXEMPT:
            return
        for idx, line in enumerate(sf.code_lines, start=1):
            if R5_RE.search(line):
                yield Finding(sf.path, idx, "R5",
                              "raw std::mutex — use atscale::Mutex from "
                              "util/thread_annotations.hh so clang's "
                              "thread-safety analysis covers it")

    def check_r6(self, sf):
        rel = sf.path.replace(os.sep, "/")
        if rel.startswith("src/") and not R6_DIR_RE.match(rel):
            return
        for idx, line in enumerate(sf.code_lines, start=1):
            m = R6_STATIC_RE.match(line)
            if m:
                yield Finding(sf.path, idx, "R6",
                              "mutable static '%s' in the lane-shared "
                              "hot path — lockstep lane groups interleave "
                              "many Core/Mmu instances in one thread, so "
                              "per-run state must be an instance member "
                              "(static constexpr and static member "
                              "functions are fine)" % m.group(1))

    # ---- R3 (cross-file) -------------------------------------------------

    def _stats_classes(self, files):
        """Map class name -> (path, line, [counter members]) for classes
        declaring registerStats or resetStats."""
        classes = {}
        for sf in files:
            if not in_scope("R3", sf.path):
                continue
            stack = []  # (class name or None, brace depth at entry)
            depth = 0
            pending = None
            for idx, line in enumerate(sf.code_lines, start=1):
                if pending is None:
                    m = CLASS_RE.match(line)
                    if m and not line.rstrip().endswith(";"):
                        pending = m.group(1)
                for ch in line:
                    if ch == "{":
                        depth += 1
                        if pending is not None:
                            stack.append((pending, depth, idx))
                            classes.setdefault(
                                pending,
                                {"path": sf.path, "line": idx,
                                 "counters": [], "has_stats": False})
                            pending = None
                    elif ch == "}":
                        if stack and stack[-1][1] == depth:
                            stack.pop()
                        depth -= 1
                if stack:
                    cls = classes[stack[-1][0]]
                    cm = COUNTER_MEMBER_RE.match(line)
                    if cm:
                        cls["counters"].append((cm.group(1), idx))
                    if "registerStats" in line or "resetStats" in line:
                        cls["has_stats"] = True
        return {name: info for name, info in classes.items()
                if info["has_stats"] and info["counters"]}

    def _registration_text(self, files):
        """Concatenated text of every registerStats implementation body.
        Brace tracking runs on the comment/string-stripped view, but the
        collected text is the raw source: the registered stat *name*
        (a string literal like ".initiated") is evidence of registration
        just as much as the accessor call reading the counter."""
        chunks = []
        for sf in files:
            text = sf.code_lines
            for idx, line in enumerate(text):
                if "registerStats" not in line:
                    continue
                depth = 0
                started = False
                j = idx
                body = []
                while j < len(text):
                    declaration_end = False
                    for ch in text[j]:
                        if ch == "{":
                            depth += 1
                            started = True
                        elif ch == "}":
                            depth -= 1
                        elif ch == ";" and depth == 0 and not started:
                            # `registerStats(...);` with no body: a
                            # declaration, not registration evidence.
                            declaration_end = True
                            break
                    if declaration_end:
                        body = []
                        break
                    body.append(sf.raw_lines[j])
                    if started and depth <= 0:
                        break
                    j += 1
                    if j - idx > 200:  # runaway: unbalanced braces
                        body = []
                        break
                chunks.extend(body)
        return "\n".join(chunks).lower()

    def check_r3(self, files):
        reg_text = self._registration_text(files)
        for cls, info in sorted(self._stats_classes(files).items()):
            for member, line in info["counters"]:
                accessor = member.rstrip("_").lower()
                if accessor in reg_text or member.lower() in reg_text:
                    continue
                yield Finding(info["path"], line, "R3",
                              "counter '%s' of stats-bearing class %s is "
                              "never registered with StatsRegistry — "
                              "register it (or suppress with a reason if "
                              "it is internal bookkeeping, not a "
                              "statistic)" % (member, cls))

    # ---- R7 (cross-file) -------------------------------------------------

    def _event_enum_members(self, files):
        """(member, path, line) for every EventId member bar NumEvents."""
        members = []
        for sf in files:
            if not in_scope("R7", sf.path):
                continue
            in_enum = False
            in_body = False
            for idx, line in enumerate(sf.code_lines, start=1):
                if not in_enum:
                    if EVENT_ENUM_RE.search(line):
                        in_enum = True
                        in_body = "{" in line
                    continue
                if not in_body:
                    in_body = "{" in line
                    continue
                if "}" in line:
                    # One EventId enum per tree: the first body wins.
                    return members
                head = line.split("=", 1)[0].split(",", 1)[0].strip()
                m = re.fullmatch(r"[A-Za-z_]\w*", head)
                if m and head != "NumEvents":
                    members.append((head, sf.path, idx))
        return members

    def _table_span(self, files, start_re):
        """(path, start line, body lines 0-based span) of the first table
        opened by start_re and closed by '};', or None."""
        for sf in files:
            if not in_scope("R7", sf.path):
                continue
            for idx, line in enumerate(sf.code_lines, start=1):
                if not start_re.search(line):
                    continue
                for end in range(idx - 1, len(sf.code_lines)):
                    if "};" in sf.code_lines[end]:
                        return sf, idx, (idx - 1, end + 1)
        return None

    def check_r7(self, files):
        members = self._event_enum_members(files)
        if not members:
            return

        encodings = self._table_span(files, ENCODINGS_START_RE)
        if encodings is not None:
            sf, _, (lo, hi) = encodings
            mapped = set()
            for line in sf.code_lines[lo:hi]:
                for m in EVENT_REF_RE.finditer(line):
                    mapped.add(m.group(1))
            for member, path, line in members:
                if member not in mapped:
                    yield Finding(path, line, "R7",
                                  "EventId::%s has no entry in the perf "
                                  "backend's encodings[] table — the "
                                  "event silently reads as zero on real "
                                  "hardware; add an encoding (or an "
                                  "explicit suppression naming why it is "
                                  "simulator-only)" % member)

        names = self._table_span(files, NAMES_START_RE)
        if names is not None:
            sf, start, (lo, hi) = names
            literals = 0
            for raw in sf.raw_lines[lo:hi]:
                literals += len(STRING_LITERAL_RE.findall(raw))
            if literals != len(members):
                yield Finding(sf.path, start, "R7",
                              "pretty-name map holds %d name(s) for %d "
                              "EventId member(s) — every event needs a "
                              "name or eventName() panics past the end"
                              % (literals, len(members)))

    # ---- R8 (cross-file) -------------------------------------------------

    def _scheme_subclasses(self, files):
        """(class name, SourceFile, line) per TranslationScheme subclass."""
        subclasses = []
        for sf in files:
            if not in_scope("R8", sf.path):
                continue
            for idx, line in enumerate(sf.code_lines, start=1):
                m = SCHEME_SUBCLASS_RE.search(line)
                if m:
                    subclasses.append((m.group(1), sf, idx))
        return subclasses

    def check_r8(self, files):
        subclasses = self._scheme_subclasses(files)
        if not subclasses:
            return

        # The registry's reach: every file that spells the factory name
        # (the registry itself plus its callers) — a subclass never
        # mentioned there cannot be constructed by name.
        factory_text = ""
        for sf in files:
            if not in_scope("R8", sf.path):
                continue
            if any(SCHEME_FACTORY_RE.search(l) for l in sf.code_lines):
                factory_text += "\n".join(sf.code_lines) + "\n"

        for cls, sf, line in subclasses:
            if not re.search(r"\b%s\b" % re.escape(cls), factory_text):
                yield Finding(sf.path, line, "R8",
                              "TranslationScheme subclass '%s' is not "
                              "constructible through the scheme registry "
                              "(mmu/scheme/registry.cc) — add it to "
                              "kSchemeNames and makeTranslationScheme, or "
                              "no sweep can ever select it" % cls)

        # registerStats: scan the subclass's declaration span (its decl
        # line up to the next subclass in the same file, or EOF).
        by_file = {}
        for cls, sf, line in subclasses:
            by_file.setdefault(sf.path, []).append((line, cls, sf))
        for path in sorted(by_file):
            spans = sorted(by_file[path])
            for i, (line, cls, sf) in enumerate(spans):
                end = (spans[i + 1][0] - 1 if i + 1 < len(spans)
                       else len(sf.code_lines))
                body = sf.code_lines[line - 1:end]
                if not any(REGISTER_STATS_RE.search(l) for l in body):
                    yield Finding(sf.path, line, "R8",
                                  "TranslationScheme subclass '%s' "
                                  "declares no registerStats — schemes "
                                  "without it are invisible to the "
                                  "observability layer (every scheme "
                                  "must register every statistic it "
                                  "keeps)" % cls)

    # ---- R9 (cross-file) -------------------------------------------------

    def _class_spans(self, sf):
        """(name, decl line, end line) per class/struct declared in sf.

        A span runs to the next declaration in the same file (or EOF) —
        the same flat approximation check_r8 uses, good enough because
        a member and its doc comment are always adjacent.
        """
        decls = []
        for idx, line in enumerate(sf.code_lines, start=1):
            m = CLASS_RE.match(line)
            if m:
                decls.append((idx, m.group(1)))
        spans = []
        for i, (line, name) in enumerate(decls):
            end = (decls[i + 1][0] - 1 if i + 1 < len(decls)
                   else len(sf.code_lines))
            spans.append((name, line, end))
        return spans

    def check_r9(self, files):
        marked = set()
        for sf in files:
            if not in_scope("R9", sf.path):
                continue
            for line in sf.code_lines:
                m = SHARED_MARK_RE.search(line)
                if m:
                    marked.add(m.group(1))
        if not marked:
            return

        # A member declaration of a marked type: the type name, an
        # optional pointer/reference/wrapper tail, a trailing-underscore
        # member name (repo convention), and the terminating semicolon.
        member_re = re.compile(
            r"\b(?:%s)\b[^();]*[\s*&>](\w+_)\s*(?:=[^;]*|\{[^;]*\})?;"
            % "|".join(sorted(re.escape(m) for m in marked)))

        for sf in files:
            if not in_scope("R9", sf.path):
                continue
            for name, decl, end in self._class_spans(sf):
                is_marked = name in marked
                holds = any(member_re.search(l)
                            for l in sf.code_lines[decl - 1:end])
                if not (is_marked or holds):
                    continue
                lo = max(0, decl - 1 - R9_DOC_LOOKBACK)
                if any(MUTEX_EVIDENCE_RE.search(l)
                       for l in sf.code_lines[lo:end]):
                    continue
                if any(CROSS_CORE_DOC_RE.search(l)
                       for l in sf.raw_lines[lo:end]):
                    continue
                what = ("is marked ATSCALE_SHARED_ACROSS_CORES"
                        if is_marked
                        else "holds a member of a marked shared type")
                yield Finding(sf.path, decl, "R9",
                              "class '%s' %s but shows no safety "
                              "evidence — guard the shared state with "
                              "an annotated atscale::Mutex or document "
                              "the lock-freedom with a `cross-core:` "
                              "comment (docs/MULTICORE.md)"
                              % (name, what))

    # ---- R10 (cross-file) ------------------------------------------------

    def _r10_charge_sites(self, files):
        """[(member, SourceFile, line)] for every `member_ += ...` into a
        cycle/stall-named accumulator, in R10 scope."""
        sites = []
        for sf in files:
            if not in_scope("R10", sf.path):
                continue
            for idx, line in enumerate(sf.code_lines, start=1):
                for m in R10_CHARGE_RE.finditer(line):
                    member = m.group(1)
                    if R10_ACCUM_NAME_RE.search(member):
                        sites.append((member, sf, idx))
        return sites

    def _r10_publication_evidence(self, files):
        """Members that reach an Eq-1 counter event: directly as an
        argument of counters_.add(EventId::<eq1>, ...), or through one
        local alias whose initializer reads the member."""
        published = set()
        for sf in files:
            if not in_scope("R10", sf.path):
                continue
            aliases = {}  # alias name -> initializer text
            for line in sf.code_lines:
                for m in R10_ALIAS_RE.finditer(line):
                    aliases[m.group(1)] = m.group(2)
            for line in sf.code_lines:
                for m in R10_COUNTER_ADD_RE.finditer(line):
                    if m.group(1) not in R10_EQ1_EVENTS:
                        continue
                    args = m.group(2)
                    for ident in re.findall(r"[A-Za-z_]\w*", args):
                        published.add(ident)
                        init = aliases.get(ident, "")
                        for src in re.findall(r"[A-Za-z_]\w*", init):
                            published.add(src)
        return published

    def _r10_annotated_members(self, files):
        """Members whose declaration sits under an `eq1: model-state`
        annotation (the declaration and the charge may be in different
        files, so the annotation set is collected tree-wide)."""
        annotated = set()
        decl_re = re.compile(r"\b([A-Za-z]\w*_)\s*(?:=[^;]*|\{[^;]*\})?;")
        for sf in files:
            if not in_scope("R10", sf.path):
                continue
            marks = [idx for idx, raw in enumerate(sf.raw_lines)
                     if R10_MODEL_STATE_RE.search(raw)]
            if not marks:
                continue
            for mark in marks:
                hi = min(len(sf.code_lines), mark + 1 + R10_DOC_LOOKBACK)
                for line in sf.code_lines[mark:hi]:
                    if "(" in line:
                        continue
                    for m in decl_re.finditer(line):
                        annotated.add(m.group(1))
        return annotated

    def _r10_accessor_registered(self, files, member, reg_text):
        """True when a one-line accessor returning the member is itself
        named in a registerStats body."""
        acc_re = re.compile(R10_ACCESSOR_RE_TMPL % re.escape(member))
        for sf in files:
            if not in_scope("R10", sf.path):
                continue
            for line in sf.code_lines:
                m = acc_re.search(line)
                if m and m.group(1).lower() in reg_text:
                    return True
        return False

    def check_r10(self, files):
        sites = self._r10_charge_sites(files)
        if not sites:
            return
        reg_text = self._registration_text(files)
        published = self._r10_publication_evidence(files)
        annotated = self._r10_annotated_members(files)
        verdicts = {}  # member -> bool (conserved)
        for member, sf, line in sites:
            if member not in verdicts:
                ok = (member.lower() in reg_text
                      or member.rstrip("_").lower() in reg_text
                      or member in published
                      or member in annotated
                      or self._r10_accessor_registered(files, member,
                                                       reg_text))
                verdicts[member] = ok
            if not verdicts[member]:
                yield Finding(sf.path, line, "R10",
                              "orphan cycle charge: '%s' accumulates "
                              "cycles but never reaches the Eq-1 "
                              "decomposition — register it with "
                              "StatsRegistry, publish it into an Eq-1 "
                              "counter event, or annotate the "
                              "declaration `eq1: model-state` if it "
                              "feeds the model rather than the "
                              "accounting (src/obs/ledger.hh catches "
                              "the runtime half of this)" % member)

    # ---- R11 (per-file) --------------------------------------------------

    def _brace_span(self, sf, start_idx):
        """0-based line index of the '}' matching the first '{' at or
        after start_idx, or None on imbalance."""
        depth = 0
        seen = False
        for j in range(start_idx, min(len(sf.code_lines), start_idx + 400)):
            for ch in sf.code_lines[j]:
                if ch == "{":
                    depth += 1
                    seen = True
                elif ch == "}":
                    depth -= 1
                    if seen and depth == 0:
                        return j
        return None

    def _r11_merge_spans(self, sf):
        """(name, start 0-based, end 0-based) of every function
        *definition* whose name says merge/combine/aggregate/reduce."""
        spans = []
        for idx, line in enumerate(sf.code_lines):
            m = R11_MERGE_DEF_RE.search(line)
            if not m:
                continue
            # A definition has '{' before ';' after the parameter list;
            # a call or declaration hits ';' first.
            tail = line[m.end():]
            is_def = None
            for j in range(idx, min(len(sf.code_lines), idx + 6)):
                probe = tail if j == idx else sf.code_lines[j]
                for ch in probe:
                    if ch == "{":
                        is_def = True
                        break
                    if ch == ";":
                        is_def = False
                        break
                if is_def is not None:
                    break
            if not is_def:
                continue
            end = self._brace_span(sf, idx)
            if end is not None:
                spans.append((m.group(1), idx, end))
        return spans

    def check_r11(self, sf):
        # (a) pointer-keyed associative containers.
        for idx, line in enumerate(sf.code_lines, start=1):
            if R11_PTR_KEY_RE.search(line):
                yield Finding(sf.path, idx, "R11",
                              "pointer-keyed associative container — "
                              "iteration order is address order, "
                              "different every run; key by a stable id "
                              "(VPN, index) instead")

        # (b) float accumulation inside merge-shaped functions.
        for name, start, end in self._r11_merge_spans(sf):
            locals_ = set()
            for line in sf.code_lines[start:end + 1]:
                m = R11_FLOAT_LOCAL_RE.match(line)
                if m:
                    locals_.add(m.group(1))
            if not locals_:
                continue
            acc_re = re.compile(r"\b(%s)\s*\+=" % "|".join(
                sorted(re.escape(l) for l in locals_)))
            for off, line in enumerate(sf.code_lines[start:end + 1]):
                m = acc_re.search(line)
                if m:
                    yield Finding(sf.path, start + off + 1, "R11",
                                  "order-dependent float accumulation "
                                  "into '%s' inside merge path '%s' — "
                                  "float addition does not commute "
                                  "bitwise; accumulate integers or fix "
                                  "the merge order" % (m.group(1), name))

        # (c) MmuResult-shaped structs: initialized members next to
        # silently uninitialized scalars, with no doc-comment evidence
        # that the gap is deliberate.
        for idx, line in enumerate(sf.code_lines):
            m = R11_STRUCT_RE.match(line)
            if not m:
                continue
            name = m.group(1) or m.group(2)
            end = self._brace_span(sf, idx)
            if end is None:
                continue
            initialized = []
            uninitialized = []
            for off, member_line in enumerate(sf.code_lines[idx:end + 1]):
                mm = R11_SCALAR_MEMBER_RE.match(member_line)
                if not mm or "(" in member_line:
                    continue
                (initialized if mm.group(2) else
                 uninitialized).append((mm.group(1), idx + off + 1))
            if not initialized or not uninitialized:
                continue
            lo = max(0, idx - R11_DOC_LOOKBACK)
            if any(R11_DOC_EVIDENCE_RE.search(raw)
                   for raw in sf.raw_lines[lo:end + 1]):
                continue
            for member, line_no in uninitialized:
                yield Finding(sf.path, line_no, "R11",
                              "struct %s mixes initialized members with "
                              "uninitialized scalar '%s' — reading it "
                              "before assignment is nondeterministic; "
                              "initialize it, or document the gap as "
                              "deliberate in the struct's doc comment "
                              "(see WalkResult in mmu/walker.hh)"
                              % (name, member))

    # ---- R12 (per-file) --------------------------------------------------

    def check_r12(self, sf):
        norm = sf.path.replace(os.sep, "/")
        if norm == R12_EXEMPT:
            return

        text = "\n".join(sf.code_lines)
        walk_lvalues = set(re.findall(r"\bWalkResult\s*&?\s*(\w+)", text))
        mmu_lvalues = set(re.findall(r"\bMmuResult\s*&?\s*(\w+)", text))

        for idx, line in enumerate(sf.code_lines, start=1):
            if R12_BANNED_RE.search(line):
                yield Finding(sf.path, idx, "R12",
                              "scheme backend touches the counter "
                              "machinery directly — extra cost flows "
                              "only through MmuResult.schemeExtraCycles/"
                              "tlbExtraLatency and the walkSlot() "
                              "WalkResult; the Core does the publishing "
                              "(docs/TRANSLATION_SCHEMES.md)")
            for m in R12_RECEIVER_RE.finditer(line):
                receiver, method = m.group(1), m.group(2)
                if method not in R12_SEAM_METHODS.get(receiver, set()):
                    yield Finding(sf.path, idx, "R12",
                                  "undocumented platform seam: "
                                  "%s.%s() — backends mutate platform "
                                  "state only through the documented "
                                  "seams (%s)"
                                  % (receiver, method, ", ".join(
                                      "%s.%s" % (r, mm)
                                      for r in sorted(R12_SEAM_METHODS)
                                      for mm in sorted(
                                          R12_SEAM_METHODS[r]))))
            for m in R12_CYCLES_WRITE_RE.finditer(line):
                if m.group(1) not in walk_lvalues:
                    yield Finding(sf.path, idx, "R12",
                                  "walk-cost write through '%s', which "
                                  "is not a walkSlot()-derived "
                                  "WalkResult — the slot is the only "
                                  "sanctioned channel for walk cycles "
                                  "(TranslationScheme::walkSlot)"
                                  % m.group(1))
            for m in R12_MMU_FIELD_WRITE_RE.finditer(line):
                if m.group(1) not in mmu_lvalues:
                    yield Finding(sf.path, idx, "R12",
                                  "%s write through '%s', which is not "
                                  "an MmuResult — scheme cost fields "
                                  "live on the result the MMU hands in"
                                  % (m.group(2), m.group(1)))


class ClangEngine(RegexEngine):
    """AST-backed engine when python libclang is available.

    R2/R5 use type spellings; R4 replaces the 30-line guard lookback
    with real if-statement ancestry; R6 reads storage class off the
    VAR_DECL instead of pattern-matching the declaration line; R10
    builds the charge-flow graph from AST nodes (compound assignments
    for charges, call expressions for publications, VAR_DECL
    initializers for aliases); R11's merge-path check types the
    accumulation target through the AST. Detection is a superset
    discipline: wherever the AST pass finds nothing — including any
    parse failure — the regex rule runs for that file, so a missing
    header or version skew can never turn the gate off. R1/R3/R7/R8/R9
    stay textual (banned identifiers and cross-file naming contracts
    are lexical properties; the AST adds nothing).
    """

    name = "libclang"

    def __init__(self, cindex, root):
        self.cindex = cindex
        self.root = root
        self.index = cindex.Index.create()
        self.args = ["-x", "c++", "-std=c++20",
                     "-I", os.path.join(root, "src")]

    def _parse(self, sf):
        return self.index.parse(os.path.join(self.root, sf.path),
                                args=self.args)

    def _walk(self, cursor, sf_abs):
        for child in cursor.get_children():
            if child.location.file and child.location.file.name == sf_abs:
                yield child
                yield from self._walk(child, sf_abs)

    def _walk_with_parents(self, cursor, sf_abs, parents=None, out=None):
        """Like _walk, but also builds a child -> parent map (cursors
        are not hashable across equal instances, so key by the triple
        (kind, line, column) of the child)."""
        if parents is None:
            parents = {}
            out = []
        for child in cursor.get_children():
            if child.location.file and child.location.file.name == sf_abs:
                key = (child.kind, child.location.line,
                       child.location.column)
                parents.setdefault(key, cursor)
                out.append(child)
                self._walk_with_parents(child, sf_abs, parents, out)
        return out, parents

    @staticmethod
    def _tokens(cur):
        return [t.spelling for t in cur.get_tokens()]

    def check_r2(self, sf):
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            found = False
            for cur in self._walk(tu.cursor, sf_abs):
                if cur.kind != kind.CXX_FOR_RANGE_STMT:
                    continue
                children = list(cur.get_children())
                if not children:
                    continue
                range_type = children[-2].type.spelling if len(
                    children) >= 2 else ""
                if "unordered_map" in range_type or \
                        "unordered_set" in range_type:
                    found = True
                    yield Finding(sf.path, cur.location.line, "R2",
                                  "range-for over unordered container "
                                  "(%s) — iteration order is "
                                  "nondeterministic" % range_type)
            # AST found nothing: trust it only if the regex agrees there
            # is nothing; a parse hiccup silently dropping the loop body
            # must not hide a finding.
            if not found:
                yield from super().check_r2(sf)
        except Exception:
            yield from super().check_r2(sf)

    def check_r5(self, sf):
        if sf.path == R5_EXEMPT:
            return
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            reported = set()
            for cur in self._walk(tu.cursor, sf_abs):
                if cur.kind not in (kind.FIELD_DECL, kind.VAR_DECL):
                    continue
                if R5_RE.search(cur.type.spelling or ""):
                    if cur.location.line not in reported:
                        reported.add(cur.location.line)
                        yield Finding(sf.path, cur.location.line, "R5",
                                      "raw %s member/variable — use "
                                      "atscale::Mutex" % cur.type.spelling)
            yield from (f for f in super().check_r5(sf)
                        if f.line not in reported)
        except Exception:
            yield from super().check_r5(sf)

    def check_r4(self, sf):
        """Real guard analysis: a walk-field read is fine iff some
        enclosing if-statement's condition established the TLB-miss
        state (mentions Miss or a hit test)."""
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            nodes, parents = self._walk_with_parents(tu.cursor, sf_abs)

            def guarded(cur):
                key = (cur.kind, cur.location.line, cur.location.column)
                seen = 0
                while key in parents and seen < 64:
                    parent = parents[key]
                    if parent.kind == kind.IF_STMT:
                        children = list(parent.get_children())
                        if children:
                            cond = " ".join(self._tokens(children[0]))
                            if MISS_GUARD_RE.search(cond):
                                return True
                    key = (parent.kind, parent.location.line,
                           parent.location.column)
                    seen += 1
                return False

            sites = []
            for cur in nodes:
                if cur.kind not in (kind.MEMBER_REF_EXPR, kind.CALL_EXPR):
                    continue
                if cur.spelling not in ("walk", "walk_"):
                    continue
                # Only reads through an object (x.walk() / x->walk_),
                # matching the regex rule's reach.
                line = (sf.code_lines[cur.location.line - 1]
                        if cur.location.line <= len(sf.code_lines) else "")
                if not WALK_READ_RE.search(line):
                    continue
                sites.append(cur)

            if not sites:
                yield from super().check_r4(sf)
                return
            reported = set()
            for cur in sites:
                if guarded(cur) or cur.location.line in reported:
                    continue
                reported.add(cur.location.line)
                yield Finding(sf.path, cur.location.line, "R4",
                              "MmuResult walk access outside any branch "
                              "that established TlbLevel::Miss — the "
                              "fields are undefined on TLB hits")
        except Exception:
            yield from super().check_r4(sf)

    def check_r6(self, sf):
        """Storage class off the AST: a VAR_DECL with static storage
        that is neither const-qualified nor constexpr is lane-coupling
        state, wherever the declaration line wrapped to."""
        rel = sf.path.replace(os.sep, "/")
        if rel.startswith("src/") and not R6_DIR_RE.match(rel):
            return
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            storage = self.cindex.StorageClass
            statics = []
            for cur in self._walk(tu.cursor, sf_abs):
                if cur.kind != kind.VAR_DECL:
                    continue
                if cur.storage_class != storage.STATIC:
                    continue
                statics.append(cur)
            if not statics:
                yield from super().check_r6(sf)
                return
            for cur in statics:
                toks = self._tokens(cur)
                if "constexpr" in toks or "constinit" in toks:
                    continue
                if cur.type.is_const_qualified() or \
                        "const" in (cur.type.spelling or ""):
                    continue
                yield Finding(sf.path, cur.location.line, "R6",
                              "mutable static '%s' in the lane-shared "
                              "hot path — lockstep lane groups "
                              "interleave many Core/Mmu instances in "
                              "one thread, so per-run state must be an "
                              "instance member (static constexpr and "
                              "static member functions are fine)"
                              % cur.spelling)
        except Exception:
            yield from super().check_r6(sf)

    def _r10_charge_sites(self, files):
        """AST charge discovery: compound `+=` assignments whose
        left-hand side resolves to a cycle/stall-named member. Falls
        back to the regex harvest when the AST pass comes up empty
        (parse trouble must not blank the rule)."""
        try:
            kind = self.cindex.CursorKind
            sites = []
            for sf in files:
                if not in_scope("R10", sf.path):
                    continue
                tu = self._parse(sf)
                sf_abs = os.path.join(self.root, sf.path)
                for cur in self._walk(tu.cursor, sf_abs):
                    if cur.kind != kind.COMPOUND_ASSIGNMENT_OPERATOR:
                        continue
                    toks = self._tokens(cur)
                    if "+=" not in toks:
                        continue
                    children = list(cur.get_children())
                    if not children:
                        continue
                    member = self._lhs_member_name(children[0], kind)
                    if member and member.endswith("_") and \
                            R10_ACCUM_NAME_RE.search(member):
                        sites.append((member, sf, cur.location.line))
            if sites:
                return sites
        except Exception:
            pass
        return super()._r10_charge_sites(files)

    def _lhs_member_name(self, cur, kind):
        """Name of the member an assignment LHS ultimately targets:
        the last member/decl reference in the LHS subtree that is not a
        subscript index."""
        if cur.kind in (kind.MEMBER_REF_EXPR, kind.DECL_REF_EXPR):
            return cur.spelling
        name = None
        for child in cur.get_children():
            got = self._lhs_member_name(child, kind)
            if got:
                name = got
                if cur.kind == kind.ARRAY_SUBSCRIPT_EXPR:
                    # arr[i]: the first child is the array, the second
                    # the index — keep the first hit only.
                    break
        return name

    def _r10_publication_evidence(self, files):
        """AST publication discovery, unioned with the regex harvest:
        call expressions named `add` whose tokens reference an Eq-1
        EventId contribute their argument identifiers, and VAR_DECL
        initializers supply the alias edges."""
        published = set(RegexEngine._r10_publication_evidence(self, files))
        try:
            kind = self.cindex.CursorKind
            for sf in files:
                if not in_scope("R10", sf.path):
                    continue
                tu = self._parse(sf)
                sf_abs = os.path.join(self.root, sf.path)
                aliases = {}
                calls = []
                for cur in self._walk(tu.cursor, sf_abs):
                    if cur.kind == kind.VAR_DECL:
                        toks = self._tokens(cur)
                        if "=" in toks:
                            init = toks[toks.index("=") + 1:]
                            aliases[cur.spelling] = set(
                                t for t in init
                                if re.fullmatch(r"[A-Za-z_]\w*", t))
                    elif cur.kind == kind.CALL_EXPR and \
                            cur.spelling == "add":
                        calls.append(cur)
                for cur in calls:
                    text = "".join(self._tokens(cur))
                    m = re.search(r"EventId::(\w+)", text)
                    if not m or m.group(1) not in R10_EQ1_EVENTS:
                        continue
                    for ident in re.findall(r"[A-Za-z_]\w*", text):
                        published.add(ident)
                        published.update(aliases.get(ident, ()))
        except Exception:
            pass
        return published

    def check_r11(self, sf):
        """AST refinement for the merge-path sub-rule: the accumulation
        target's *type* comes from the AST, so an integer accumulator
        with a float-looking name cannot trip it. The pointer-key and
        mixed-init-struct sub-rules stay textual (a type spelling is a
        string either way). Falls back wholesale on parse failure."""
        try:
            tu = self._parse(sf)
            sf_abs = os.path.join(self.root, sf.path)
            kind = self.cindex.CursorKind
            spans = self._r11_merge_spans(sf)
            ast_findings = []
            engaged = False
            if spans:
                for cur in self._walk(tu.cursor, sf_abs):
                    if cur.kind != kind.COMPOUND_ASSIGNMENT_OPERATOR:
                        continue
                    line = cur.location.line
                    span = next(((n, s, e) for n, s, e in spans
                                 if s + 1 <= line <= e + 1), None)
                    if span is None:
                        continue
                    engaged = True
                    if "+=" not in self._tokens(cur):
                        continue
                    children = list(cur.get_children())
                    if not children:
                        continue
                    lhs = children[0]
                    type_name = (lhs.type.spelling or "").replace(
                        "const ", "")
                    if type_name in ("double", "float"):
                        ast_findings.append(Finding(
                            sf.path, line, "R11",
                            "order-dependent float accumulation into "
                            "'%s' inside merge path '%s' — float "
                            "addition does not commute bitwise; "
                            "accumulate integers or fix the merge "
                            "order" % (lhs.spelling or "<expr>",
                                       span[0])))
            if engaged:
                # Textual sub-rules (a) and (c), AST sub-rule (b).
                for f in super().check_r11(sf):
                    if "merge path" not in f.message:
                        yield f
                yield from ast_findings
            else:
                yield from super().check_r11(sf)
        except Exception:
            yield from super().check_r11(sf)


def make_engine(requested, root):
    if requested in ("auto", "libclang"):
        try:
            import clang.cindex as cindex  # noqa: deferred, optional
            cindex.Index.create()
            return ClangEngine(cindex, root)
        except Exception as exc:
            if requested == "libclang":
                # The caller demanded the AST engine (CI does): a silent
                # regex fallback would let the stronger analysis rot
                # unnoticed, so refuse loudly instead.
                print("atscale-lint: --engine=libclang requires the "
                      "python clang bindings (python3-clang), which "
                      "failed to load: %s — install them or pass "
                      "--engine=auto/regex" % exc, file=sys.stderr)
                sys.exit(2)
    return RegexEngine()


def parse_suppression_budget(spec):
    """Parse a --max-suppressions spec: a bare total ("10"), per-rule
    caps ("R3=2,R10=0"), or both ("2,R3=2"). A per-rule cap bounds that
    rule's suppressions; rules without a cap fall under the total only.
    Returns (total or None, {rule: cap})."""
    total = None
    per_rule = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" in token:
            rule, _, count = token.partition("=")
            rule = rule.strip().upper()
            if not re.fullmatch(r"R\d+", rule):
                raise ValueError("bad rule name %r in --max-suppressions"
                                 % rule)
            per_rule[rule] = int(count)
        else:
            total = int(token)
    return total, per_rule


def apply_suppressions(findings, files_by_path):
    for f in findings:
        sup = files_by_path[f.path].suppressions.get(f.line, {})
        if f.rule in sup:
            f.suppressed = True
            f.reason = sup[f.rule]
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="atscale-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to scan "
                             "(default: %s)" % " ".join(SCAN_DIRS))
    parser.add_argument("--root", default=".",
                        help="repo root (scopes like 'src/' are resolved "
                             "against it)")
    parser.add_argument("--engine", choices=["auto", "libclang", "regex"],
                        default="auto")
    parser.add_argument("--rules",
                        default="R1,R2,R3,R4,R5,R6,R7,R8,R9,R10,R11,R12",
                        help="comma-separated subset of rules to run")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON")
    parser.add_argument("--max-suppressions", default=None,
                        help="suppression budget: a total (\"10\"), "
                             "per-rule caps (\"R3=2,R10=0\"), or both "
                             "(\"2,R3=2\"); exceeding any bound fails "
                             "the run (CI uses \"2,R3=2\")")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="also write a JSON report (engine, counts, "
                             "findings) to PATH — CI uploads it as the "
                             "lint artifact")
    parser.add_argument("--quiet", action="store_true",
                        help="only print the summary and failures")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    paths = args.paths or [d for d in SCAN_DIRS
                           if os.path.isdir(os.path.join(root, d))]
    rules = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
    try:
        budget_total, budget_per_rule = parse_suppression_budget(
            args.max_suppressions) if args.max_suppressions is not None \
            else (None, {})
    except ValueError as exc:
        parser.error(str(exc))

    rels = discover(root, paths)
    files = [load_file(root, rel) for rel in rels]
    files_by_path = {sf.path: sf for sf in files}
    engine = make_engine(args.engine, root)

    findings = []
    per_file_checks = {"R1": "check_r1", "R2": "check_r2",
                       "R4": "check_r4", "R5": "check_r5",
                       "R6": "check_r6", "R11": "check_r11",
                       "R12": "check_r12"}
    for sf in files:
        for rule, method in per_file_checks.items():
            if rule in rules and in_scope(rule, sf.path):
                findings.extend(getattr(engine, method)(sf))
    for rule, method in (("R3", "check_r3"), ("R7", "check_r7"),
                         ("R8", "check_r8"), ("R9", "check_r9"),
                         ("R10", "check_r10")):
        if rule in rules:
            findings.extend(getattr(engine, method)(files))

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    apply_suppressions(findings, files_by_path)

    unsuppressed = [f for f in findings if not f.suppressed]
    suppressed = [f for f in findings if f.suppressed]

    if args.json:
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            if not f.suppressed or not args.quiet:
                print(f.render())
        print("atscale-lint (%s engine): %d files, %d finding(s), "
              "%d suppressed" % (engine.name, len(files),
                                 len(unsuppressed), len(suppressed)))

    status = 0
    if unsuppressed:
        status = 1
    if budget_total is not None and len(suppressed) > budget_total:
        print("atscale-lint: %d suppressions exceed the budget of %d — "
              "fix some findings or raise the budget deliberately"
              % (len(suppressed), budget_total), file=sys.stderr)
        status = 1
    for rule in sorted(budget_per_rule):
        count = sum(1 for f in suppressed if f.rule == rule)
        if count > budget_per_rule[rule]:
            print("atscale-lint: %d %s suppression(s) exceed that "
                  "rule's budget of %d" % (count, rule,
                                           budget_per_rule[rule]),
                  file=sys.stderr)
            status = 1

    if args.report is not None:
        report = {
            "engine": engine.name,
            "files": len(files),
            "rules": rules,
            "unsuppressed": len(unsuppressed),
            "suppressed": len(suppressed),
            "budget": {"total": budget_total, "per_rule": budget_per_rule},
            "status": status,
            "findings": [f.__dict__ for f in findings],
        }
        with open(args.report, "w", encoding="utf-8") as out:
            json.dump(report, out, indent=2)
            out.write("\n")
    return status


if __name__ == "__main__":
    sys.exit(main())
