// R1 fixture: ambient wall-clock and randomness in src/. Every line
// below must be flagged — results would stop being a pure function of
// the RunSpec seed.
#include <chrono>
#include <cstdlib>
#include <random>

namespace atscale_fixture
{

unsigned long long
seedFromAmbientState()
{
    auto t = std::chrono::steady_clock::now();
    std::random_device entropy;
    std::srand(42);
    unsigned long long mixed = static_cast<unsigned long long>(std::rand());
    return mixed + entropy() +
           static_cast<unsigned long long>(t.time_since_epoch().count());
}

} // namespace atscale_fixture
