// R2 fixture: iterating an unordered container straight into output.
// The emission order depends on the hash function and load factor, so
// two runs (or two standard libraries) print different bytes.
#include <cstdio>
#include <string>
#include <unordered_map>

namespace atscale_fixture
{

struct ResultSink
{
    std::unordered_map<std::string, double> byName;

    void
    emit() const
    {
        for (const auto &entry : byName)
            std::printf("%s %f\n", entry.first.c_str(), entry.second);
    }

    double
    sumViaIterators() const
    {
        double sum = 0.0;
        for (auto it = byName.begin(); it != byName.end(); ++it)
            sum += it->second;
        return sum;
    }
};

} // namespace atscale_fixture
