// R3 fixture: a stats-bearing class (declares registerStats) with a
// counter member the registration body never mentions. The orphan
// counter exists, increments, and is invisible to every snapshot —
// exactly the completeness violation the exactness contract forbids.
#include <cstdint>
#include <string>

namespace atscale_fixture
{

using Count = std::uint64_t;
class StatsRegistry;

class LeakyCounters
{
  public:
    void registerStats(StatsRegistry &registry,
                       const std::string &prefix) const;

    Count probes() const { return probes_; }

  private:
    Count probes_ = 0;
    Count orphanDrops_ = 0;
};

void
LeakyCounters::registerStats(StatsRegistry &registry,
                             const std::string &prefix) const
{
    // Registers the probe counter but forgets the drop counter.
    (void)registry;
    (void)prefix;
    (void)probes_;
}

} // namespace atscale_fixture
