// R4 fixture: reading MmuResult walk fields with no TLB-miss guard
// anywhere nearby. On a TLB hit those fields were never written (the
// fast path does zero walk bookkeeping), so this reads garbage.
#include <cstdint>

namespace atscale_fixture
{

struct FakeWalk
{
    std::uint64_t cycles = 0;
};

struct FakeResult
{
    const FakeWalk &walk() const { return walk_; }
    FakeWalk walk_;
};

std::uint64_t
chargeWalkCyclesUnconditionally(const FakeResult &result)
{
    return result.walk().cycles;
}

} // namespace atscale_fixture
