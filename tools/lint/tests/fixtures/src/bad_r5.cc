// R5 fixture: a raw std::mutex member. Clang's thread-safety analysis
// cannot see through an unannotated mutex, so the locking discipline
// around `value_` is unprovable — use atscale::Mutex instead.
#include <mutex>

namespace atscale_fixture
{

class SharedBox
{
  public:
    void
    set(int value)
    {
        std::lock_guard<std::mutex> lock(mu_);
        value_ = value;
    }

  private:
    std::mutex mu_;
    int value_ = 0;
};

} // namespace atscale_fixture
