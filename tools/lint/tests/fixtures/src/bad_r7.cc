// R7 fixture: an EventId vocabulary whose per-event tables are
// incomplete. WalkCycles has no encodings[] entry (on real hardware it
// would silently read as zero), and the pretty-name map holds two names
// for three events (eventName() would panic past the end).
#include <array>
#include <cstdint>

namespace atscale_fixture
{

enum class EventId : std::uint8_t
{
    CyclesTotal = 0,
    InstrTotal,
    WalkCycles,
    NumEvents,
};

constexpr int numEvents = static_cast<int>(EventId::NumEvents);

struct EventEncoding
{
    EventId id;
    std::uint32_t type;
    std::uint64_t config;
};

const EventEncoding encodings[] = {
    {EventId::CyclesTotal, 0, 0},
    {EventId::InstrTotal, 0, 1},
};

const std::array<const char *, numEvents> names = {
    "cycles_total",
    "instr_total",
};

} // namespace atscale_fixture
