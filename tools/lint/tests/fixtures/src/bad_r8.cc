// R8 fixture: TranslationScheme subclasses that break the seam's
// contract. OrphanScheme registers its stats but is never mentioned in
// any makeTranslationScheme factory text (no sweep can select it);
// SilentScheme is also unregistered AND declares no registerStats (the
// observability layer would never see it).
namespace atscale_fixture
{

class StatsRegistry;

class TranslationScheme
{
  public:
    virtual ~TranslationScheme() = default;
};

class OrphanScheme final : public TranslationScheme
{
  public:
    const char *name() const { return "orphan"; }
    void registerStats(StatsRegistry &registry) const;
};

class SilentScheme final : public TranslationScheme
{
  public:
    const char *name() const { return "silent"; }
};

} // namespace atscale_fixture
