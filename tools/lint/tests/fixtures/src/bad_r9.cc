// R9 fixture: cross-core shared structures without safety evidence.
// BareSharedTable is marked ATSCALE_SHARED_ACROSS_CORES but carries
// neither an annotated Mutex nor the documenting comment the rule
// demands; SilentHolder embeds a pointer to the marked type and is
// equally silent about why lock-free access would be safe.
#define ATSCALE_SHARED_ACROSS_CORES

namespace atscale_fixture
{

class ATSCALE_SHARED_ACROSS_CORES BareSharedTable
{
  public:
    void touch() { ++hits_; }

  private:
    unsigned long hits_ = 0;
};

class SilentHolder
{
  public:
    void step();

  private:
    BareSharedTable *table_ = nullptr;
};

} // namespace atscale_fixture
