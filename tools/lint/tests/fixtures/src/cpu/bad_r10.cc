// R10 fixture: cycle charges that bypass the Eq-1 decomposition. The
// class registers stats, but busyCycles_ and idleStallCycles_ are
// accumulated and never reach a registered counter, an Eq-1 counter
// publication, or an `eq1: model-state` annotation — orphan charges,
// the static twin of the runtime CycleLedger assertion.
namespace atscale_fixture
{

class StatsRegistry;

class OrphanTimer
{
  public:
    void
    tick(double cycles)
    {
        busyCycles_ += cycles;
        idleStallCycles_ += cycles * 0.5;
    }

    void
    registerStats(StatsRegistry &registry, const char *prefix)
    {
        (void)registry;
        (void)prefix;
    }

  private:
    double busyCycles_ = 0.0;
    double idleStallCycles_ = 0.0;
};

} // namespace atscale_fixture
