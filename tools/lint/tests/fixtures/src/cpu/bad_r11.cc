// R11 fixture: three determinism hazards. (a) a pointer-keyed map
// iterates in address order, different every run; (b) float
// accumulation in a merge path depends on merge order; (c) a
// result-shaped struct mixes initialized flags with silently
// uninitialized accounting scalars.
#include <map>

namespace atscale_fixture
{

class Region;

class RegionStats
{
  public:
    void account(Region *region, double weight);

  private:
    std::map<Region *, double> weights_;
};

struct PartialResult
{
    bool valid = false;
    double cycles;
    long accesses;
};

double
mergeWindows(const double *values, int count)
{
    double sum = 0.0;
    for (int i = 0; i < count; ++i)
        sum += values[i];
    return sum;
}

} // namespace atscale_fixture
