// R6 fixture: mutable static state in the simulated-CPU layer. The
// lockstep lane executor interleaves many Core instances in one thread,
// so a function-local or class-level static that carries per-run state
// couples lanes and breaks the lane exactness contract.

namespace atscale_fixture
{

using Count = unsigned long long;

class LeakyPredictor
{
  public:
    Count
    predict(Count vpn)
    {
        // Function-local mutable static: shared across every lane that
        // calls predict(), so lane B sees lane A's history.
        static Count lastVpn = 0;
        Count guess = lastVpn + 1;
        lastVpn = vpn;
        return guess;
    }

  private:
    // Class-level mutable static: one counter for all instances.
    static Count calls_;

    // Fine: compile-time table, identical for every lane.
    static constexpr Count tableSize = 64;

    // Fine: a static member *function* holds no state.
    static Count
    hash(Count vpn)
    {
        return vpn * 0x9e3779b97f4a7c15ull >> 32;
    }
};

Count LeakyPredictor::calls_ = 0;

} // namespace atscale_fixture
