// R10 clean: every cycle accumulator flows into the decomposition —
// walkCycles_ is registered by name in registerStats, execCycles_ is
// published into an Eq-1 counter through a one-hop alias, and
// pressureStall_ carries the `eq1: model-state` annotation.
namespace atscale_fixture
{

class StatsRegistry;
enum class EventId { CpuClkUnhalted };
struct FixtureCounters
{
    void add(EventId id, double v);
};

class LedgeredTimer
{
  public:
    void
    tick(double cycles)
    {
        walkCycles_ += cycles;
        execCycles_ += cycles;
        pressureStall_ += cycles * 0.01;
    }

    void
    publish()
    {
        double delta = execCycles_;
        counters_.add(EventId::CpuClkUnhalted, delta);
    }

    void
    registerStats(StatsRegistry &registry, const char *prefix)
    {
        registerScalar(registry, prefix, ".walk_cycles", walkCycles_);
    }

  private:
    void registerScalar(StatsRegistry &registry, const char *prefix,
                        const char *name, double value);

    FixtureCounters counters_;
    double walkCycles_ = 0.0;
    double execCycles_ = 0.0;
    /** Stall-pressure EWMA input.
     * eq1: model-state — feeds the speculation model, never published. */
    double pressureStall_ = 0.0;
};

} // namespace atscale_fixture
