// R11 clean: a value-keyed map (stable iteration order), an integer
// merge accumulator (order-independent), and a result struct whose
// uninitialized fields are documented as deliberate.
#include <cstdint>
#include <map>

namespace atscale_fixture
{

class ValueStats
{
  public:
    void account(std::uint64_t vpn, double weight);

  private:
    std::map<std::uint64_t, double> weights_;
};

/**
 * Mixed initialization, documented: the accounting fields are
 * deliberately left uninitialized and are meaningful only when valid
 * is set — the WalkResult pattern (mmu/walker.hh).
 */
struct DocumentedResult
{
    bool valid = false;
    double cycles;
    long accesses;
};

long
mergeCounts(const long *values, int count)
{
    long sum = 0;
    for (int i = 0; i < count; ++i)
        sum += values[i];
    return sum;
}

} // namespace atscale_fixture
