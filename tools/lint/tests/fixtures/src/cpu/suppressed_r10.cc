// R10 suppressed: a deliberate orphan charge with an in-place reason —
// the accumulator feeds a debug probe, not the Eq-1 accounting, and the
// suppression makes that reviewable at the charge site.
namespace atscale_fixture
{

class StatsRegistry;

class SuppressedTimer
{
  public:
    void
    tick(double cycles)
    {
        // atscale-lint: allow(R10 probe-tool scratch accumulator, not Eq-1 accounting)
        probeCycles_ += cycles;
    }

    void registerStats(StatsRegistry &registry, const char *prefix);

  private:
    double probeCycles_ = 0.0;
};

} // namespace atscale_fixture
