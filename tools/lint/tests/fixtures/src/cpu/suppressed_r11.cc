// R11 suppressed: a pointer-keyed map with an in-place justification —
// the index never feeds output or stats, and the reason says so where
// the hazard lives.
#include <map>

namespace atscale_fixture
{

class Region;

class DebugIndex
{
  private:
    // atscale-lint: allow(R11 debug-only index, resorted by name before any output)
    std::map<Region *, int> index_;
};

} // namespace atscale_fixture
