// Negative fixture: idiomatic code that must produce zero findings —
// ordered-map iteration, seeded RNG-style state, a guarded walk read,
// and the annotated mutex pattern (spelled without std::mutex here so
// the fixture does not depend on the real tree's headers).
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

namespace atscale_fixture
{

struct OrderedSink
{
    std::map<std::string, double> byName;

    void
    emit() const
    {
        for (const auto &entry : byName)
            std::printf("%s %f\n", entry.first.c_str(), entry.second);
    }
};

struct FakeWalk
{
    std::uint64_t cycles = 0;
};

enum class TlbLevel { L1, L2, Miss };

struct FakeResult
{
    TlbLevel tlbLevel = TlbLevel::Miss;
    const FakeWalk &walk() const { return walk_; }
    FakeWalk walk_;
};

std::uint64_t
chargeWalkCyclesGuarded(const FakeResult &result)
{
    if (result.tlbLevel != TlbLevel::Miss)
        return 0;
    return result.walk().cycles;
}

} // namespace atscale_fixture
