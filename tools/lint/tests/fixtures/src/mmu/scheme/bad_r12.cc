// R12 fixture: a translation backend that violates the scheme seam —
// it mutates platform state through an undocumented AddressSpace call,
// charges walk cycles into storage it owns instead of the walkSlot,
// and publishes counters directly instead of letting the Core do it.
namespace atscale_fixture
{

struct WalkOut
{
    unsigned long cycles = 0;
};

class RogueScheme
{
  public:
    void
    translate(unsigned long vaddr)
    {
        space_.remapPage(vaddr);
        scratch_.cycles += 40;
        publishCycles(40);
    }

    void chargeCycles(unsigned long cycles);

  private:
    void
    publishCycles(unsigned long cycles)
    {
        chargeCycles(cycles);
    }

    struct Space
    {
        void remapPage(unsigned long);
    } space_;
    WalkOut scratch_;
};

} // namespace atscale_fixture
