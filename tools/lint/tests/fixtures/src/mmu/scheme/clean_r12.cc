// R12 clean: a backend that stays inside the seam — platform state is
// touched only through documented calls, walk cost goes through the
// walkSlot()-provided WalkResult, and extra scheme cost through the
// MmuResult fields the contract sanctions.
namespace atscale_fixture
{

struct WalkResult
{
    unsigned long cycles = 0;
};

struct MmuResult
{
    unsigned long schemeExtraCycles = 0;
    unsigned long tlbExtraLatency = 0;
};

class SeamScheme
{
  public:
    void
    translate(unsigned long vaddr, MmuResult &result)
    {
        space_.touch(vaddr);
        hierarchy_.access(vaddr);
        WalkResult &walk = walkSlot(result);
        walk.cycles += 40;
        result.schemeExtraCycles = 2;
        result.tlbExtraLatency = 1;
    }

  private:
    static WalkResult &walkSlot(MmuResult &result);

    struct Space
    {
        void touch(unsigned long);
    } space_;
    struct Hierarchy
    {
        void access(unsigned long);
    } hierarchy_;
};

} // namespace atscale_fixture
