// R12 suppressed: an out-of-seam call with an in-place justification —
// a read-only diagnostics probe that mutates nothing, documented where
// the contract is bent.
namespace atscale_fixture
{

class ProbeScheme
{
  public:
    void
    probe(unsigned long vaddr)
    {
        // atscale-lint: allow(R12 read-only diagnostics probe, mutates no platform state)
        space_.dumpStats(vaddr);
    }

  private:
    struct Space
    {
        void dumpStats(unsigned long);
    } space_;
};

} // namespace atscale_fixture
