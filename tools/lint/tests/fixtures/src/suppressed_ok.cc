// Suppression fixture: the same R5 violation as bad_r5.cc, but carrying
// an inline allow() with a reason — the tool must count it as
// suppressed and exit 0.
#include <mutex>

namespace atscale_fixture
{

class ExternallyImposedBox
{
  private:
    // atscale-lint: allow(R5 type must stay layout-compatible with a C API)
    std::mutex mu_;
    int value_ = 0;
};

} // namespace atscale_fixture
