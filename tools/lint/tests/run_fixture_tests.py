#!/usr/bin/env python3
"""Self-test for atscale-lint: runs the tool over the checked-in
fixtures and asserts the exact findings each rule must produce, that the
clean fixture produces nothing, that suppressions are honoured, and that
the suppression budget is enforced. Registered as a ctest (label: lint)
so `ctest` alone exercises the tool.

Runs with --engine=regex: the fixtures are self-contained snippets and
the regex engine is the one guaranteed present everywhere; the libclang
engine is exercised opportunistically in CI where python3-clang exists.
"""

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TOOL = os.path.join(HERE, os.pardir, "atscale_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []
passes = []


def check(name, condition, detail=""):
    if condition:
        passes.append(name)
        print("ok   %s" % name)
    else:
        failures.append(name)
        print("FAIL %s %s" % (name, detail))


def run_lint(*extra):
    proc = subprocess.run(
        [sys.executable, TOOL, "--root", FIXTURES, "--engine", "regex",
         "--json", *extra],
        capture_output=True, text=True)
    try:
        findings = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print("unparseable tool output:\n%s\n%s" % (proc.stdout, proc.stderr))
        sys.exit(2)
    return proc.returncode, findings


def by_file(findings):
    grouped = {}
    for f in findings:
        grouped.setdefault(os.path.basename(f["path"]), []).append(f)
    return grouped


def main():
    code, findings = run_lint()
    grouped = by_file(findings)

    check("tool exits nonzero on unsuppressed findings", code == 1,
          "exit=%d" % code)

    # One known-bad fixture per rule: every finding in the file carries
    # that rule, and at least the expected sites are hit.
    expectations = {
        "bad_r1.cc": ("R1", 4),  # chrono/now share a line; 4 distinct lines
        "bad_r2.cc": ("R2", 2),  # range-for + iterator loop
        "bad_r3.cc": ("R3", 1),  # the orphan counter
        "bad_r4.cc": ("R4", 1),  # the unguarded walk read
        "bad_r5.cc": ("R5", 2),  # member + lock_guard<std::mutex>
        "bad_r6.cc": ("R6", 2),  # function-local + class-level static
        "bad_r7.cc": ("R7", 2),  # unmapped event + short name table
        "bad_r8.cc": ("R8", 2),  # two unregistered schemes (one silent)
        "bad_r9.cc": ("R9", 2),  # marked class + undocumented holder
    }
    for fixture, (rule, min_lines) in sorted(expectations.items()):
        got = grouped.get(fixture, [])
        rules = {f["rule"] for f in got}
        lines = {f["line"] for f in got}
        check("%s flags %s" % (fixture, rule), rules == {rule},
              "rules=%s" % sorted(rules))
        check("%s hits >= %d site(s)" % (fixture, min_lines),
              len(lines) >= min_lines, "lines=%s" % sorted(lines))
        check("%s findings are unsuppressed" % fixture,
              all(not f["suppressed"] for f in got))

    clean = grouped.get("good_clean.cc", [])
    check("good_clean.cc produces no findings", not clean,
          "got %s" % [(f["rule"], f["line"]) for f in clean])

    sup = grouped.get("suppressed_ok.cc", [])
    check("suppressed_ok.cc finding is counted", len(sup) == 1,
          "got %d" % len(sup))
    check("suppressed_ok.cc finding is suppressed",
          all(f["suppressed"] for f in sup))
    check("suppression reason is reported",
          all("layout-compatible" in f["reason"] for f in sup))

    # The suppression budget: generous budget passes the suppressed
    # fixture through, zero budget rejects it.
    code_ok, _ = run_lint("--rules", "R5", "--max-suppressions", "5",
                          "src/suppressed_ok.cc")
    check("suppressed file passes within budget", code_ok == 0,
          "exit=%d" % code_ok)
    code_over, _ = run_lint("--rules", "R5", "--max-suppressions", "0",
                            "src/suppressed_ok.cc")
    check("suppression budget of 0 is enforced", code_over == 1,
          "exit=%d" % code_over)

    # Rule scoping: R1 only applies under src/ of the scanned root, so
    # scanning the fixture root's bench/-less tree via an explicit path
    # keeps non-src files quiet. (bad_r1 lives in src/, so restricting
    # rules to R1 over the whole tree must flag exactly that file.)
    code_r1, findings_r1 = run_lint("--rules", "R1")
    files_r1 = {os.path.basename(f["path"]) for f in findings_r1}
    check("R1 findings confined to the R1 fixture",
          files_r1 == {"bad_r1.cc"}, "files=%s" % sorted(files_r1))

    print("%d check(s), %d failure(s)" % (len(passes) + len(failures),
                                          len(failures)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
