#!/usr/bin/env python3
"""Self-test for atscale-lint: runs the tool over the checked-in
fixtures and asserts the exact findings each rule must produce, that the
clean fixtures produce nothing, that suppressions are honoured (globally
and per rule), and that the suppression budget is enforced. Registered
as a ctest (label: lint) so `ctest` alone exercises the tool.

Runs with --engine=regex: the fixtures are self-contained snippets and
the regex engine is the one guaranteed present everywhere. Where the
python clang bindings are importable (CI installs python3-clang), the
suite additionally runs the libclang engine over the same corpus and
asserts both engines report the identical (file, rule, line) set — the
divergence self-test that keeps the two implementations honest. It also
checks that the R10 rule's Eq-1 component vocabulary has not drifted
from the runtime ledger's (src/obs/ledger.cc).
"""

import json
import os
import re
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
TOOL = os.path.join(HERE, os.pardir, "atscale_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.abspath(os.path.join(HERE, os.pardir, os.pardir, os.pardir))

failures = []
passes = []


def check(name, condition, detail=""):
    if condition:
        passes.append(name)
        print("ok   %s" % name)
    else:
        failures.append(name)
        print("FAIL %s %s" % (name, detail))


def run_lint(*extra, engine="regex"):
    proc = subprocess.run(
        [sys.executable, TOOL, "--root", FIXTURES, "--engine", engine,
         "--json", *extra],
        capture_output=True, text=True)
    try:
        findings = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print("unparseable tool output:\n%s\n%s" % (proc.stdout, proc.stderr))
        sys.exit(2)
    return proc.returncode, findings


def libclang_available():
    try:
        import clang.cindex  # noqa: optional, CI-only
        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def by_file(findings):
    grouped = {}
    for f in findings:
        grouped.setdefault(os.path.basename(f["path"]), []).append(f)
    return grouped


def main():
    code, findings = run_lint()
    grouped = by_file(findings)

    check("tool exits nonzero on unsuppressed findings", code == 1,
          "exit=%d" % code)

    # One known-bad fixture per rule: every finding in the file carries
    # that rule, and at least the expected sites are hit.
    expectations = {
        "bad_r1.cc": ("R1", 4),  # chrono/now share a line; 4 distinct lines
        "bad_r2.cc": ("R2", 2),  # range-for + iterator loop
        "bad_r3.cc": ("R3", 1),  # the orphan counter
        "bad_r4.cc": ("R4", 1),  # the unguarded walk read
        "bad_r5.cc": ("R5", 2),  # member + lock_guard<std::mutex>
        "bad_r6.cc": ("R6", 2),  # function-local + class-level static
        "bad_r7.cc": ("R7", 2),  # unmapped event + short name table
        "bad_r8.cc": ("R8", 2),  # two unregistered schemes (one silent)
        "bad_r9.cc": ("R9", 2),  # marked class + undocumented holder
        "bad_r10.cc": ("R10", 2),  # two orphan cycle charges
        "bad_r11.cc": ("R11", 4),  # ptr map + 2 uninit scalars + float merge
        "bad_r12.cc": ("R12", 4),  # rogue seam + scratch cycles + 2 charges
    }
    for fixture, (rule, min_lines) in sorted(expectations.items()):
        got = grouped.get(fixture, [])
        rules = {f["rule"] for f in got}
        lines = {f["line"] for f in got}
        check("%s flags %s" % (fixture, rule), rules == {rule},
              "rules=%s" % sorted(rules))
        check("%s hits >= %d site(s)" % (fixture, min_lines),
              len(lines) >= min_lines, "lines=%s" % sorted(lines))
        check("%s findings are unsuppressed" % fixture,
              all(not f["suppressed"] for f in got))

    for clean_name in ("good_clean.cc", "clean_r10.cc", "clean_r11.cc",
                       "clean_r12.cc"):
        clean = grouped.get(clean_name, [])
        check("%s produces no findings" % clean_name, not clean,
              "got %s" % [(f["rule"], f["line"]) for f in clean])

    sup = grouped.get("suppressed_ok.cc", [])
    check("suppressed_ok.cc finding is counted", len(sup) == 1,
          "got %d" % len(sup))
    check("suppressed_ok.cc finding is suppressed",
          all(f["suppressed"] for f in sup))
    check("suppression reason is reported",
          all("layout-compatible" in f["reason"] for f in sup))

    for sup_name, rule in (("suppressed_r10.cc", "R10"),
                           ("suppressed_r11.cc", "R11"),
                           ("suppressed_r12.cc", "R12")):
        got = grouped.get(sup_name, [])
        check("%s finding is counted and suppressed" % sup_name,
              len(got) == 1 and got[0]["suppressed"]
              and got[0]["rule"] == rule,
              "got %s" % [(f["rule"], f["line"], f["suppressed"])
                          for f in got])

    # The suppression budget: generous budget passes the suppressed
    # fixture through, zero budget rejects it.
    code_ok, _ = run_lint("--rules", "R5", "--max-suppressions", "5",
                          "src/suppressed_ok.cc")
    check("suppressed file passes within budget", code_ok == 0,
          "exit=%d" % code_ok)
    code_over, _ = run_lint("--rules", "R5", "--max-suppressions", "0",
                            "src/suppressed_ok.cc")
    check("suppression budget of 0 is enforced", code_over == 1,
          "exit=%d" % code_over)

    # Per-rule budgets: a generous total with a zero cap on the specific
    # rule still rejects, and a per-rule allowance admits exactly it.
    code_rule_over, _ = run_lint("--rules", "R5", "--max-suppressions",
                                 "5,R5=0", "src/suppressed_ok.cc")
    check("per-rule budget of 0 is enforced", code_rule_over == 1,
          "exit=%d" % code_rule_over)
    code_rule_ok, _ = run_lint("--rules", "R5", "--max-suppressions",
                               "1,R5=1", "src/suppressed_ok.cc")
    check("per-rule allowance admits the suppression", code_rule_ok == 0,
          "exit=%d" % code_rule_ok)

    # Rule scoping: R1 only applies under src/ of the scanned root, so
    # scanning the fixture root's bench/-less tree via an explicit path
    # keeps non-src files quiet. (bad_r1 lives in src/, so restricting
    # rules to R1 over the whole tree must flag exactly that file.)
    code_r1, findings_r1 = run_lint("--rules", "R1")
    files_r1 = {os.path.basename(f["path"]) for f in findings_r1}
    check("R1 findings confined to the R1 fixture",
          files_r1 == {"bad_r1.cc"}, "files=%s" % sorted(files_r1))

    # New-rule scoping: R10-R12 reach only their src/ subdirectories, so
    # the top-level fixtures (bad_r1..r9 etc.) stay quiet under them.
    _, findings_new = run_lint("--rules", "R10,R11,R12")
    out_of_scope = {f["path"] for f in findings_new
                    if not f["path"].replace(os.sep, "/").startswith(
                        ("src/cpu/", "src/mmu/", "src/sys/", "src/cache/"))}
    check("R10-R12 findings confined to their subdirectory scopes",
          not out_of_scope, "paths=%s" % sorted(out_of_scope))

    # Vocabulary drift: the static rule and the runtime ledger must
    # agree on the Eq-1 component table, or R10's notion of "reaches the
    # decomposition" quietly diverges from what the ledger asserts.
    sys.path.insert(0, os.path.dirname(TOOL))
    import atscale_lint
    ledger_cc = os.path.join(REPO, "src", "obs", "ledger.cc")
    if os.path.exists(ledger_cc):
        with open(ledger_cc, encoding="utf-8") as f:
            text = f.read()
        case_re = re.compile(r"case CycleComponent::(\w+):\s*return\s*"
                             r'"([\w?]+)";')

        def switch_table(function_name):
            start = text.find(function_name + "(CycleComponent")
            end = text.find("\n}", start)
            return dict(case_re.findall(text[start:end]))

        names = switch_table("cycleComponentName")
        roles = switch_table("cycleComponentEq1Role")
        ledger_table = {names[comp]: roles[comp] for comp in names
                        if comp in roles}
        check("R10's Eq-1 component table matches the runtime ledger",
              ledger_table == atscale_lint.R10_LEDGER_COMPONENTS,
              "ledger.cc=%s lint=%s" % (
                  sorted(ledger_table.items()),
                  sorted(atscale_lint.R10_LEDGER_COMPONENTS.items())))
    else:
        check("src/obs/ledger.cc exists for the drift check", False,
              "missing %s" % ledger_cc)

    # Engine divergence self-test: where the clang bindings exist, both
    # engines must report the identical (file, rule, line) set over the
    # fixture corpus. Skipped (not silently passed) where they do not.
    if libclang_available():
        _, regex_findings = run_lint()
        _, clang_findings = run_lint(engine="libclang")
        as_keys = lambda fs: {  # noqa: E731
            (f["path"], f["rule"], f["line"]) for f in fs}
        missing = as_keys(regex_findings) - as_keys(clang_findings)
        extra = as_keys(clang_findings) - as_keys(regex_findings)
        check("regex and libclang engines agree on the fixtures",
              not missing and not extra,
              "regex-only=%s libclang-only=%s" % (sorted(missing),
                                                  sorted(extra)))
    else:
        print("skip engine-agreement check (python clang bindings "
              "unavailable; CI runs it)")

    print("%d check(s), %d failure(s)" % (len(passes) + len(failures),
                                          len(failures)))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
