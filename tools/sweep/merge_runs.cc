/**
 * @file
 * merge_runs: combine the artifacts of sharded sweep runs
 * (--shard=i/N) into exactly what one single-machine run would have
 * produced.
 *
 * Two merge surfaces, usable together or alone:
 *
 *   --cache DIR... --out-cache DIR
 *     Union the shards' run-cache directories (and recorded stream
 *     files, if --record-streams placed any there) into one directory.
 *     Entries are keyed by spec, and the simulation is deterministic,
 *     so a name collision must be byte-identical — anything else means
 *     mismatched binaries or platforms and is a hard error, not a
 *     pick-one.
 *
 *   --partial FILE... --out-json FILE
 *     Reassemble the shards' partial sweep aggregates
 *     (core/sweep_partial.hh) into the whole-sweep JSON array. Every
 *     declared job index must be covered exactly once across the
 *     partials; the output is rendered by the same writer the engine
 *     uses, so the merged file is byte-identical to an unsharded
 *     sweep's aggregate.
 *
 * For outputs beyond the aggregate (per-job JSON, windows, traces),
 * rerun the sweep unsharded against the merged cache: every job is a
 * cache hit and the emission matches a single-machine run byte for
 * byte.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <string>
#include <sys/stat.h>
#include <unistd.h>
#include <vector>

#include "core/run_export.hh"
#include "core/sweep_partial.hh"

namespace
{

using atscale::RunResult;
using atscale::SweepPartial;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--cache DIR]... [--out-cache DIR]\n"
        "       %*s [--partial FILE]... [--out-json FILE]\n"
        "\n"
        "Merge sharded sweep artifacts (see --shard=i/N) into what a\n"
        "single-machine run would have produced: --cache directories\n"
        "are unioned into --out-cache (collisions must be\n"
        "byte-identical), and --partial aggregates are reassembled\n"
        "into the whole-sweep JSON at --out-json.\n",
        argv0, static_cast<int>(std::strlen(argv0)), "");
    return 2;
}

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out.assign((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

bool
writeFileAtomic(const std::string &path, const std::string &bytes)
{
    std::string tmp = path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream out(tmp, std::ios::binary);
        if (!out)
            return false;
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

/** Regular files directly inside `dir`, sorted for determinism. */
bool
listFiles(const std::string &dir, std::vector<std::string> &names)
{
    DIR *handle = ::opendir(dir.c_str());
    if (!handle)
        return false;
    while (struct dirent *entry = ::readdir(handle)) {
        std::string name = entry->d_name;
        if (name == "." || name == "..")
            continue;
        // Skip in-flight temp files from a still-running shard.
        if (name.find(".tmp.") != std::string::npos)
            continue;
        struct stat st;
        std::string path = dir + "/" + name;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        names.push_back(std::move(name));
    }
    ::closedir(handle);
    std::sort(names.begin(), names.end());
    return true;
}

int
mergeCaches(const std::vector<std::string> &dirs, const std::string &out)
{
    ::mkdir(out.c_str(), 0777); // best-effort, may exist
    std::size_t copied = 0;
    std::size_t identical = 0;
    for (const std::string &dir : dirs) {
        std::vector<std::string> names;
        if (!listFiles(dir, names)) {
            std::fprintf(stderr, "merge_runs: cannot list '%s'\n",
                         dir.c_str());
            return 1;
        }
        for (const std::string &name : names) {
            std::string bytes;
            if (!readFile(dir + "/" + name, bytes)) {
                std::fprintf(stderr, "merge_runs: cannot read '%s/%s'\n",
                             dir.c_str(), name.c_str());
                return 1;
            }
            std::string target = out + "/" + name;
            std::string existing;
            if (readFile(target, existing)) {
                if (existing != bytes) {
                    // Determinism says equal specs produce equal bytes;
                    // a mismatch means the shards did not run the same
                    // simulation and no merge output can be trusted.
                    std::fprintf(stderr,
                                 "merge_runs: '%s' differs between "
                                 "shards (same key, different bytes) — "
                                 "were the shards run with the same "
                                 "binary and platform?\n",
                                 name.c_str());
                    return 1;
                }
                ++identical;
                continue;
            }
            if (!writeFileAtomic(target, bytes)) {
                std::fprintf(stderr, "merge_runs: cannot write '%s'\n",
                             target.c_str());
                return 1;
            }
            ++copied;
        }
    }
    std::printf("merge_runs: %zu cache file(s) merged into %s "
                "(%zu already present and identical)\n",
                copied, out.c_str(), identical);
    return 0;
}

int
mergePartials(const std::vector<std::string> &paths, const std::string &out)
{
    std::size_t total = 0;
    double freq = 0.0;
    std::vector<RunResult> results;
    std::vector<char> seen;
    for (const std::string &path : paths) {
        SweepPartial partial;
        std::string error;
        if (!atscale::loadSweepPartialFile(path, partial, error)) {
            std::fprintf(stderr, "merge_runs: %s\n", error.c_str());
            return 1;
        }
        if (results.empty()) {
            total = partial.totalJobs;
            freq = partial.freqGHz;
            results.resize(total);
            seen.assign(total, 0);
        } else if (partial.totalJobs != total || partial.freqGHz != freq) {
            std::fprintf(stderr,
                         "merge_runs: '%s' declares a different sweep "
                         "(%zu jobs) than the first partial (%zu)\n",
                         path.c_str(), partial.totalJobs, total);
            return 1;
        }
        for (SweepPartial::Entry &entry : partial.entries) {
            if (entry.index >= total || seen[entry.index]) {
                std::fprintf(stderr,
                             "merge_runs: '%s' job index %zu is out of "
                             "range or already covered\n",
                             path.c_str(), entry.index);
                return 1;
            }
            seen[entry.index] = 1;
            results[entry.index] = std::move(entry.result);
        }
    }
    std::size_t missing = 0;
    for (char s : seen)
        missing += s == 0;
    if (missing > 0) {
        std::fprintf(stderr,
                     "merge_runs: %zu of %zu job(s) missing from the "
                     "given partials — pass every shard's .partial "
                     "file\n",
                     missing, total);
        return 1;
    }
    atscale::writeRunResultsJsonFile(out, results, freq);
    std::printf("merge_runs: %zu job(s) from %zu partial(s) merged "
                "into %s\n",
                total, paths.size(), out.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> cache_dirs;
    std::vector<std::string> partials;
    std::string out_cache;
    std::string out_json;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "merge_runs: %s needs a value\n",
                             flag);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--cache") {
            const char *value = next("--cache");
            if (!value)
                return usage(argv[0]);
            cache_dirs.push_back(value);
        } else if (arg == "--out-cache") {
            const char *value = next("--out-cache");
            if (!value)
                return usage(argv[0]);
            out_cache = value;
        } else if (arg == "--partial") {
            const char *value = next("--partial");
            if (!value)
                return usage(argv[0]);
            partials.push_back(value);
        } else if (arg == "--out-json") {
            const char *value = next("--out-json");
            if (!value)
                return usage(argv[0]);
            out_json = value;
        } else {
            std::fprintf(stderr, "merge_runs: unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (cache_dirs.empty() != out_cache.empty()) {
        std::fprintf(stderr,
                     "merge_runs: --cache and --out-cache go together\n");
        return usage(argv[0]);
    }
    if (partials.empty() != out_json.empty()) {
        std::fprintf(stderr,
                     "merge_runs: --partial and --out-json go together\n");
        return usage(argv[0]);
    }
    if (cache_dirs.empty() && partials.empty())
        return usage(argv[0]);

    if (!cache_dirs.empty()) {
        int status = mergeCaches(cache_dirs, out_cache);
        if (status != 0)
            return status;
    }
    if (!partials.empty()) {
        int status = mergePartials(partials, out_json);
        if (status != 0)
            return status;
    }
    return 0;
}
