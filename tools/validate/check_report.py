#!/usr/bin/env python3
"""Drive the validation harness and check the divergence report shape.

This is the `ctest -L validate` entry point. It runs validate_harness
with the given extra arguments, then asserts the report is well-formed:

- the harness exits 0 (graceful degradation included),
- the report parses as JSON and carries the machine-readable "status"
  field with a known value ("ok" or "skipped_no_pmu"),
- an "ok" report has points with per-component comparisons,
- a skipped report has a non-empty diagnostic "reason".

With --expect-status the status must match exactly — CI's counter-less
leg passes --expect-status=skipped_no_pmu via --force-no-pmu to prove
the no-PMU path never rots.
"""

import argparse
import json
import subprocess
import sys

KNOWN_STATUSES = {"ok", "skipped_no_pmu"}


def fail(message):
    print(f"check_report: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_report(report, expect_status):
    status = report.get("status")
    if status not in KNOWN_STATUSES:
        fail(f'bad "status": {status!r} (known: {sorted(KNOWN_STATUSES)})')
    if expect_status and status != expect_status:
        fail(f'expected status {expect_status!r}, got {status!r}')
    if report.get("schema") != "atscale-validation-v1":
        fail(f'bad "schema": {report.get("schema")!r}')

    if status == "ok":
        points = report.get("points")
        if not points:
            fail('status "ok" but no validation points')
        for point in points:
            for key in ("workload", "footprint_bytes", "page_size",
                        "components", "agrees"):
                if key not in point:
                    fail(f"point missing {key!r}: {point.get('workload')}")
            if not point["components"]:
                fail(f"point has no components: {point['workload']}")
            for comp in point["components"]:
                for key in ("name", "simulated", "measured", "rel_error",
                            "measurable", "within_tolerance"):
                    if key not in comp:
                        fail(f"component missing {key!r}")
    else:
        if not report.get("reason"):
            fail("skip report carries no diagnostic reason")
    return status


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--harness", required=True,
                        help="path to the validate_harness binary")
    parser.add_argument("--report", required=True,
                        help="where the harness should write the report")
    parser.add_argument("--expect-status", default=None,
                        choices=sorted(KNOWN_STATUSES),
                        help="require this exact report status")
    parser.add_argument("extra", nargs="*",
                        help="extra harness arguments (after --)")
    args = parser.parse_args()

    cmd = [args.harness, f"--report={args.report}"] + args.extra
    print("check_report: running:", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        fail(f"harness exited {proc.returncode}")

    try:
        with open(args.report, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as exc:
        fail(f"cannot read report {args.report}: {exc}")

    status = check_report(report, args.expect_status)
    print(f"check_report: OK (status={status}, "
          f"points={len(report.get('points', []))})")


if __name__ == "__main__":
    main()
