// Validation harness: measured vs simulated WCPI divergence report.
//
// Runs the exec-mode validation workloads through the simulator and —
// when the machine exposes a usable PMU — natively under
// LinuxPerfBackend, compares the Eq-1 WCPI decompositions per
// workload x footprint x page size, prints the human table, and writes
// the JSON divergence report. On counter-less machines it writes a
// skip report (status "skipped_no_pmu") and exits 0: graceful
// degradation is part of the contract, asserted by ctest -L validate.
//
// Flags:
//   --quick               reduced point set and windows (ATSCALE_QUICK=1
//                         implies this)
//   --workloads=a,b       override the workload list
//   --footprints-mib=N,M  override the footprint list (MiB)
//   --page-sizes=4k,2m    override the page-size list (4k/2m/1g)
//   --tolerance=X         per-component relative-error tolerance
//   --report=PATH         JSON report path (default divergence_report.json)
//   --force-no-pmu        skip PMU measurement even when available
//   --fail-on-divergence  exit 1 when a measurable component diverges
//   --threads=N           simulated-side sweep threads (core/sweep.hh)

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <sys/stat.h>

#include "core/sweep.hh"
#include "validate/validation_sweep.hh"

using namespace atscale;

namespace
{

void
ensureCacheDir()
{
    const char *dir = std::getenv("ATSCALE_CACHE_DIR");
    std::string path = dir && *dir ? dir : "atscale_cache";
    ::mkdir(path.c_str(), 0755);
    setenv("ATSCALE_CACHE_DIR", path.c_str(), 0);
}

bool
quickEnv()
{
    const char *q = std::getenv("ATSCALE_QUICK");
    return q && *q && *q != '0';
}

[[noreturn]] void
usageError(const char *argv0, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
    std::exit(2);
}

std::vector<std::string>
splitList(const std::string &value)
{
    std::vector<std::string> items;
    std::size_t start = 0;
    while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string::npos)
            comma = value.size();
        if (comma > start)
            items.push_back(value.substr(start, comma - start));
        start = comma + 1;
    }
    return items;
}

bool
parsePageSize(const std::string &name, PageSize &out)
{
    if (name == "4k" || name == "4K") {
        out = PageSize::Size4K;
    } else if (name == "2m" || name == "2M") {
        out = PageSize::Size2M;
    } else if (name == "1g" || name == "1G") {
        out = PageSize::Size1G;
    } else {
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    ensureCacheDir();
    std::string error;
    if (!extractSweepFlags(argc, argv, error))
        usageError(argv[0], error);

    ValidationOptions options;
    options.threads = resolveThreads();
    std::string reportPath = "divergence_report.json";
    bool quick = quickEnv();
    bool failOnDivergence = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const std::string &prefix) {
            return arg.substr(prefix.size());
        };
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--force-no-pmu") {
            options.forceNoPmu = true;
        } else if (arg == "--fail-on-divergence") {
            failOnDivergence = true;
        } else if (arg.rfind("--report=", 0) == 0) {
            reportPath = value("--report=");
            if (reportPath.empty())
                usageError(argv[0], "--report needs a path");
        } else if (arg.rfind("--workloads=", 0) == 0) {
            options.workloads = splitList(value("--workloads="));
            if (options.workloads.empty())
                usageError(argv[0], "--workloads needs a list");
        } else if (arg.rfind("--footprints-mib=", 0) == 0) {
            options.footprints.clear();
            for (const std::string &item :
                 splitList(value("--footprints-mib="))) {
                char *end = nullptr;
                unsigned long long mib = std::strtoull(item.c_str(), &end, 10);
                if (!end || *end || mib == 0)
                    usageError(argv[0],
                               "--footprints-mib: bad value '" + item + "'");
                options.footprints.push_back(
                    static_cast<std::uint64_t>(mib) << 20);
            }
            if (options.footprints.empty())
                usageError(argv[0], "--footprints-mib needs a list");
        } else if (arg.rfind("--page-sizes=", 0) == 0) {
            options.pageSizes.clear();
            for (const std::string &item :
                 splitList(value("--page-sizes="))) {
                PageSize size;
                if (!parsePageSize(item, size))
                    usageError(argv[0],
                               "--page-sizes: bad value '" + item + "'");
                options.pageSizes.push_back(size);
            }
            if (options.pageSizes.empty())
                usageError(argv[0], "--page-sizes needs a list");
        } else if (arg.rfind("--tolerance=", 0) == 0) {
            char *end = nullptr;
            options.tolerance = std::strtod(arg.c_str() + 12, &end);
            if (!end || *end || options.tolerance <= 0)
                usageError(argv[0], "--tolerance: bad value");
        } else {
            usageError(argv[0], "unknown argument '" + arg + "'");
        }
    }

    if (quick) {
        // One small point per workload: CI-speed, still end-to-end.
        options.footprints = {32ull << 20};
        options.pageSizes = {PageSize::Size4K};
        options.warmupRefs = 100'000;
        options.measureRefs = 300'000;
    }

    DivergenceReport report = runValidationSweep(options);
    printDivergenceTable(report, std::cout);
    writeDivergenceFile(report, reportPath);
    std::cout << "wrote " << reportPath << "\n";

    if (failOnDivergence && report.status == "ok" && !report.allAgree())
        return 1;
    return 0;
}
